package core

import (
	"fmt"

	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/obs"
	"xhc/internal/shm"
	"xhc/internal/sim"
	"xhc/internal/xpmem"
)

// Non-blocking collectives over the simulated backend. Each rank owns a
// request lane: Icollective calls append a Request to the lane's queue and
// (lazily) spawn a helper process on the same core that drains the queue in
// issue order, executing the normal blocking bodies. Progress is therefore
// genuinely asynchronous in virtual time — the issuing rank computes on
// while its helper moves bytes — and the engine's schedule exploration
// interleaves helpers of different ranks and different communicators.
//
// Same-shape small broadcasts (n <= CICOThreshold, same root) queued
// back-to-back are fused: the helper pops a whole prefix and runs one
// hierarchy traversal that carries every sub-op in a per-rank staging
// buffer (fusedBcast below). Fusability is decided per request from
// rank-uniform facts only (kind, size, root, the comm's threshold), so all
// ranks agree on each op's protocol even when their batch boundaries end
// up ragged.

// maxFuseBatch caps how many same-shape small broadcasts one hierarchy
// traversal carries (and sizes the per-rank staging buffer).
const maxFuseBatch = 8

// testPoll is the virtual-time backoff Test takes when the request is not
// yet done: a pure re-check would never return control to the engine, so
// Test always advances the clock enough for helpers to run.
const testPoll = 100 * sim.Nanosecond

// reqKind dispatches a queued request to its blocking body.
type reqKind uint8

const (
	reqBcast reqKind = iota
	reqAllreduce
	reqReduce
	reqBarrier
	reqAllgather
	reqScatter
	reqGather
)

// Request is a handle on one outstanding non-blocking collective. It is
// owned by the issuing rank: only that rank may Test/Wait it, and a
// successful Test or a Wait consumes the handle (MPI_REQUEST_NULL
// discipline — the object returns to the lane's freelist and must not be
// touched again). Done is the non-consuming peek for harness code that
// checks completion ordering across several live requests.
type Request struct {
	c    *Comm
	rank int
	kind reqKind
	fuse bool

	buf  *mem.Buffer // primary buffer (bcast buf / sbuf / in)
	buf2 *mem.Buffer // secondary buffer (rbuf / out)
	off  int
	n    int // payload bytes (block bytes for the v-collectives)
	root int
	dt   mpi.Datatype
	op   mpi.Op

	issued   int64 // obs clock at issue (0 when unobserved)
	svcStart int64 // obs clock when the helper popped it (service start)
	bytes    int64

	done    bool
	waiters []reqWaiter
	next    *Request // freelist link
}

// reqWaiter is a proc suspended in Wait, with the token that arms its wake.
type reqWaiter struct {
	p     *sim.Proc
	token uint64
}

// nbRank is one rank's non-blocking lane. All fields are plain: the
// simulation is cooperative, and the issue-order gate below guarantees the
// app proc and the helper proc never race on them.
type nbRank struct {
	queue   []*Request
	head    int
	active  bool // a helper proc is draining the queue
	pending int  // issued but not completed
	seq     uint64
	free    *Request
}

// nbGated reports whether rank currently has outstanding requests, in
// which case a blocking collective must be diverted through the queue to
// preserve issue order behind them.
func (c *Comm) nbGated(rank int) bool { return c.nb[rank].pending > 0 }

// getReq pops a recycled request (or allocates one) for rank.
func (c *Comm) getReq(rank int) *Request {
	lane := &c.nb[rank]
	r := lane.free
	if r == nil {
		return &Request{c: c, rank: rank}
	}
	lane.free = r.next
	r.next = nil
	r.done = false
	r.fuse = false
	return r
}

// release returns a consumed request to its lane's freelist.
func (c *Comm) release(r *Request) {
	lane := &c.nb[r.rank]
	r.buf, r.buf2 = nil, nil
	r.waiters = r.waiters[:0]
	r.done = false
	r.next = lane.free
	lane.free = r
}

// buildReq fills a recycled request with one call's arguments.
func (c *Comm) buildReq(rank int, kind reqKind, buf, buf2 *mem.Buffer, off, n, root int, dt mpi.Datatype, op mpi.Op) *Request {
	r := c.getReq(rank)
	r.kind, r.buf, r.buf2 = kind, buf, buf2
	r.off, r.n, r.root = off, n, root
	r.dt, r.op = dt, op
	r.bytes = int64(n)
	return r
}

// issue appends r to the caller's lane and ensures a helper is draining
// it. The helper is spawned with Engine.Go, which schedules it after the
// events already pending at the current timestamp — so a burst of
// back-to-back issues queues entirely before the helper's first step, and
// the fusion window naturally sees the whole burst.
func (c *Comm) issue(p *env.Proc, r *Request) *Request {
	lane := &c.nb[p.Rank]
	lane.pending++
	c.inflightCur++
	if c.rec != nil {
		c.rec.NoteInflight(c.inflightCur)
	}
	if c.obsClock != nil {
		r.issued = c.obsClock()
	}
	lane.queue = append(lane.queue, r)
	if !lane.active {
		lane.active = true
		rank := p.Rank
		c.W.Sys.Eng.Go(fmt.Sprintf("xhc.nb.r%d", rank), func(sp *sim.Proc) {
			c.nbHelper(&env.Proc{S: sp, W: c.W, Rank: rank, Core: c.W.Core(rank)})
		})
	}
	return r
}

// issueBlocking routes a blocking collective through the request queue —
// the path a blocking call takes while non-blocking requests are
// outstanding. Diverted calls are never fusable: a rank with an empty lane
// runs the same op inline with the blocking protocol, and protocol choice
// must stay rank-uniform.
func (c *Comm) issueBlocking(p *env.Proc, r *Request) {
	c.issue(p, r).Wait(p)
}

// Ibcast starts a non-blocking broadcast of buf[off:off+n] from root.
func (c *Comm) Ibcast(p *env.Proc, buf *mem.Buffer, off, n, root int) *Request {
	sizeCheck(buf, off, n)
	r := c.buildReq(p.Rank, reqBcast, buf, nil, off, n, root, 0, 0)
	r.fuse = n > 0 && n <= c.fuseMax
	return c.issue(p, r)
}

// Iallreduce starts a non-blocking allreduce of sbuf into rbuf.
func (c *Comm) Iallreduce(p *env.Proc, sbuf, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op) *Request {
	sizeCheck(sbuf, 0, n)
	return c.issue(p, c.buildReq(p.Rank, reqAllreduce, sbuf, rbuf, 0, n, 0, dt, op))
}

// Ireduce starts a non-blocking reduce of sbuf into root's rbuf.
func (c *Comm) Ireduce(p *env.Proc, sbuf, rbuf *mem.Buffer, n int, dt mpi.Datatype, op mpi.Op, root int) *Request {
	sizeCheck(sbuf, 0, n)
	return c.issue(p, c.buildReq(p.Rank, reqReduce, sbuf, rbuf, 0, n, root, dt, op))
}

// Ibarrier starts a non-blocking barrier.
func (c *Comm) Ibarrier(p *env.Proc) *Request {
	return c.issue(p, c.buildReq(p.Rank, reqBarrier, nil, nil, 0, 0, 0, 0, 0))
}

// Iallgather starts a non-blocking allgather of blockLen-byte blocks.
func (c *Comm) Iallgather(p *env.Proc, in, out *mem.Buffer, blockLen int) *Request {
	sizeCheck(in, 0, blockLen)
	sizeCheck(out, 0, blockLen*c.W.N)
	return c.issue(p, c.buildReq(p.Rank, reqAllgather, in, out, 0, blockLen, 0, 0, 0))
}

// Iscatter starts a non-blocking scatter of blockLen-byte blocks from
// root's buf into each rank's out.
func (c *Comm) Iscatter(p *env.Proc, buf, out *mem.Buffer, blockLen, root int) *Request {
	sizeCheck(out, 0, blockLen)
	return c.issue(p, c.buildReq(p.Rank, reqScatter, buf, out, 0, blockLen, root, 0, 0))
}

// InFlight returns the number of currently outstanding requests on the
// communicator (all ranks).
func (c *Comm) InFlight() int64 { return c.inflightCur }

// Done reports completion without consuming the request.
func (r *Request) Done() bool { return r.done }

// Test polls the request once, advancing virtual time just enough for
// helper processes to make progress. On true the request is consumed.
func (r *Request) Test(p *env.Proc) bool {
	if !r.done {
		p.S.Sleep(testPoll)
	}
	if !r.done {
		return false
	}
	r.c.release(r)
	return true
}

// Wait blocks the calling proc until the request completes, then consumes
// it. The loop guards against stale wakeups addressed to a previous
// suspension of the same proc.
func (r *Request) Wait(p *env.Proc) {
	for !r.done {
		r.waiters = append(r.waiters, reqWaiter{p: p.S, token: p.S.NextSuspendToken()})
		p.S.Suspend("xhc: request wait")
	}
	r.c.release(r)
}

// Waitall waits for every non-nil request, in order.
func Waitall(p *env.Proc, rs ...*Request) {
	for _, r := range rs {
		if r != nil {
			r.Wait(p)
		}
	}
}

// nbHelper is the per-rank progress process: it drains the lane in issue
// order, popping maximal fusable prefixes into one fused traversal and
// executing everything else through the normal blocking bodies. It exits
// when the queue runs dry; the next issue respawns it.
func (c *Comm) nbHelper(p *env.Proc) {
	lane := &c.nb[p.Rank]
	var batch [maxFuseBatch]*Request
	for {
		if lane.head == len(lane.queue) {
			lane.queue = lane.queue[:0]
			lane.head = 0
			lane.active = false
			return
		}
		r := lane.queue[lane.head]
		if c.obsClock != nil {
			r.svcStart = c.obsClock()
		}
		if !r.fuse {
			lane.head++
			if !c.chaos().EarlyComplete {
				c.execReq(p, r)
			}
			c.completeReq(r)
			continue
		}
		k := 0
		for lane.head < len(lane.queue) && k < maxFuseBatch {
			nx := lane.queue[lane.head]
			if !nx.fuse || nx.root != r.root || nx.n != r.n {
				// A fusable request that cannot join this batch is a ragged
				// break — the shape mismatch the fusion window tolerates but
				// cannot fuse across. Counted per op (rank 0), like Ops.
				if nx.fuse && c.rec != nil && p.Rank == 0 {
					c.rec.CountFuseAbort()
				}
				break
			}
			nx.svcStart = r.svcStart
			batch[k] = nx
			k++
			lane.head++
		}
		c.fusedBcast(p, batch[:k])
		for i := range batch[:k] {
			batch[i] = nil
		}
	}
}

// execReq runs a request's blocking body on the helper proc.
func (c *Comm) execReq(p *env.Proc, r *Request) {
	switch r.kind {
	case reqBcast:
		c.bcast(p, r.buf, r.off, r.n, r.root)
	case reqAllreduce:
		c.allreduce(p, r.buf, r.buf2, r.n, r.dt, r.op, true, 0)
	case reqReduce:
		c.allreduce(p, r.buf, r.buf2, r.n, r.dt, r.op, false, r.root)
	case reqBarrier:
		c.barrier(p)
	case reqAllgather:
		c.allgather(p, r.buf, r.buf2, r.n)
	case reqScatter:
		c.scatter(p, r.buf, r.buf2, r.n, r.root)
	case reqGather:
		c.gather(p, r.buf, r.buf2, r.n, r.root)
	default:
		panic(fmt.Sprintf("core: unknown request kind %d", r.kind))
	}
}

// completeReq publishes a request's completion: records its span, marks it
// done, wakes its waiters and releases the lane's pending gate. The gate
// is released last so pending==0 proves the helper performs no further
// shared-state activity for this request.
func (c *Comm) completeReq(r *Request) {
	if c.chaos().LostProgress {
		// Mutation: drop the completion on the floor — the body ran, but
		// Test never reports done and Wait suspends forever.
		return
	}
	lane := &c.nb[r.rank]
	lane.seq++
	if c.rec != nil {
		end := c.obsClock()
		q := r.svcStart - r.issued
		if q < 0 || r.svcStart == 0 {
			q = 0
		}
		rec := obs.FlightRecord{
			Seq: lane.seq, Start: r.issued, End: end,
			Bytes: r.bytes, Lane: int32(r.rank), Op: obs.OpRequest,
		}
		rec.Phase[obs.PhaseQueueWait] = q
		c.rec.RecordRequest(rec)
		if c.Trace != nil {
			core := c.W.Core(r.rank)
			if q > 0 {
				c.Trace.Record(core, -1, obs.PhaseQueueWait, "request", lane.seq, r.issued, r.issued+q, r.bytes)
			}
			c.Trace.Record(core, -1, obs.PhaseCollective, "request", lane.seq, r.issued, end, r.bytes)
		}
	}
	r.done = true
	if len(r.waiters) > 0 {
		eng := c.W.Sys.Eng
		now := eng.Now()
		for _, w := range r.waiters {
			eng.Wake(w.p, w.token, now)
		}
		r.waiters = r.waiters[:0]
	}
	lane.pending--
	c.inflightCur--
}

// fuseStaging returns (lazily allocating) rank's fused-batch staging
// buffer. Only forwarding ranks of fused batches allocate one, so worlds
// that never fuse keep their memory footprint unchanged. The buffer is
// sized by the construction-time cap (fuseCap), not the live fuseMax: a
// tuner may lower FuseBytes and later raise it back, and a buffer sized
// at the low-water mark would overflow.
func (c *Comm) fuseStaging(rank int) *mem.Buffer {
	if c.fuseBuf[rank] == nil {
		c.fuseBuf[rank] = c.W.NewBufferAt(c.name("fuse.%d", rank), rank, maxFuseBatch*c.fuseCap)
	}
	return c.fuseBuf[rank]
}

// fusedBcast runs one hierarchy traversal carrying a batch of same-shape
// small broadcasts (all n bytes from the same root, k <= maxFuseBatch).
//
// The root stages the k payloads contiguously in its staging buffer,
// exposes it with fuseFirst = the batch's first op sequence, and announces
// the whole batch at once (ready advances by k*n, expSeq jumps to the
// batch-last sequence). Members serve sub-ops in rounds: wait until the
// parent's expSeq covers the next unserved op, re-read fuseFirst (the
// parent's own batching may be ragged against ours — it may have restaged
// between our rounds), copy each covered sub-op out at (q-fuseFirst)*n,
// restage and republish for their own groups, and ack incrementally.
// Incremental acks are what keep ragged batches deadlock-free: a parent
// whose batch ends mid-way through ours can retire it (its freeze guard
// waits on acks up to *its* last) and publish the rest. The trailing
// freeze guard — every forwarding rank waits for its members' acks to
// reach batch-last — pins the staging buffer and fuseFirst until no
// reader is left, which is what makes re-reading fuseFirst sound.
//
// All cumulative counters advance exactly as k blocking broadcasts would
// have advanced them, so fused and unfused ops interleave freely on one
// communicator.
func (c *Comm) fusedBcast(p *env.Proc, batch []*Request) {
	if c.chaos().EarlyComplete {
		// Mutation: complete the whole batch without moving a byte (and
		// without touching any counter — uniform across ranks, so nothing
		// hangs; byte-exactness sees the stale payloads).
		for _, r := range batch {
			c.completeReq(r)
		}
		return
	}
	k := len(batch)
	n := batch[0].n
	root := batch[0].root
	st := c.stateFor(root)
	view := st.views[p.Rank]
	first := view.opSeq + 1
	view.opSeq += uint64(k)
	last := view.opSeq
	if p.Rank == 0 {
		c.Ops += int64(k)
		if c.rec != nil {
			c.rec.CountFusedBatch(k, int64(k)*int64(n))
		}
	}
	kn := uint64(k) * uint64(n)
	pc := c.newPhaseClock(p, obs.OpBcast, last, int64(kn), st.h.NLevels())
	lead := st.leadLevels(p.Rank)
	pl := st.pullLevel(p.Rank)

	var stg *mem.Buffer
	if len(lead) > 0 {
		stg = c.fuseStaging(p.Rank)
	}

	if p.Rank == root {
		if stg != nil {
			for i, r := range batch {
				p.Copy(stg, i*n, r.buf, r.off, n)
			}
			if c.chaos().FuseCorrupt && k >= 2 {
				// Mutation: swap the first two staged sub-ops — the batch
				// boundary corruption fusion must rule out.
				tmp := make([]byte, n)
				copy(tmp, stg.Data[:n])
				copy(stg.Data[:n], stg.Data[n:2*n])
				copy(stg.Data[n:2*n], tmp)
				p.Dirty(stg)
			}
			pc.mark(-1, obs.PhaseChunkCopy, int64(kn))
			for _, l := range lead {
				gs, _ := st.groupOf(l, p.Rank)
				gs.exposed = xpmem.Expose(stg)
				gs.exposedOff = 0
				gs.fuseFirst = first
				c.setReady(p, gs, view.cumBytes[l]+kn)
				gs.expSeq.Set(p.S, p.Core, last)
			}
			pc.mark(-1, obs.PhaseExpose, 0)
		}
	} else {
		gs, _ := st.groupOf(pl, p.Rank)
		served := 0
		for served < k {
			e := gs.expSeq.WaitGE(p.S, p.Core, first+uint64(served))
			pc.markFrom(pl, obs.PhaseFlagWait, 0, c.W.Core(gs.leader))
			f := gs.fuseFirst
			src := c.caches[p.Rank].Attach(p.S, gs.exposed)
			soff := gs.exposedOff
			upTo := e
			if upTo > last {
				upTo = last
			}
			for q := first + uint64(served); q <= upTo; q++ {
				r := batch[q-first]
				p.Copy(r.buf, r.off, src, soff+int(q-f)*n, n)
				if stg != nil {
					p.Copy(stg, int(q-first)*n, r.buf, r.off, n)
				}
			}
			round := int(upTo-first) + 1 - served
			pc.mark(pl, obs.PhaseChunkCopy, int64(round*n))
			c.caches[p.Rank].Release(p.S, gs.exposed)
			if stg != nil {
				done := uint64(int(upTo-first)+1) * uint64(n)
				for _, l := range lead {
					lgs, _ := st.groupOf(l, p.Rank)
					lgs.exposed = xpmem.Expose(stg)
					lgs.exposedOff = 0
					lgs.fuseFirst = first
					c.setReady(p, lgs, view.cumBytes[l]+done)
					lgs.expSeq.Set(p.S, p.Core, upTo)
				}
				pc.mark(pl, obs.PhaseExpose, 0)
			}
			gs.acks[p.Rank].Set(p.S, p.Core, upTo)
			served = int(upTo-first) + 1
		}
		c.recordPull(gs.leader, p.Rank, k*n)
	}

	// Freeze guard: a forwarding rank (and the root) may not return — and
	// so may not restage for a later batch or run a later op — until every
	// member has drained this batch.
	for _, l := range lead {
		gs, _ := st.groupOf(l, p.Rank)
		var flags []*shm.Flag
		for _, m := range gs.g.Members {
			if m != p.Rank {
				flags = append(flags, gs.acks[m])
			}
		}
		shm.WaitAllGE(p.S, p.Core, flags, last)
	}
	pc.mark(-1, obs.PhaseAck, 0)
	for l := range view.cumBytes {
		view.cumBytes[l] += kn
	}
	pc.finish()
	for _, r := range batch {
		c.completeReq(r)
	}
}
