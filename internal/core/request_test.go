package core

import (
	"bytes"
	"fmt"
	"testing"

	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/topo"
)

// TestIbcastOverlapAndFusion issues a burst of small same-shape broadcasts
// (fused into one traversal) plus a large one (unfused), overlaps them with
// compute, and checks every payload and completion order.
func TestIbcastOverlapAndFusion(t *testing.T) {
	top := topo.Epyc2P()
	nranks, root := 16, 3
	small, large := 256, 64<<10
	k := 4
	w := world(t, top, nranks)
	c := MustNew(w, DefaultConfig())
	smallBufs := make([][]*mem.Buffer, nranks)
	largeBufs := make([]*mem.Buffer, nranks)
	for r := 0; r < nranks; r++ {
		smallBufs[r] = make([]*mem.Buffer, k)
		for i := 0; i < k; i++ {
			smallBufs[r][i] = w.NewBufferAt(fmt.Sprintf("s%d.%d", r, i), r, small)
			if r == root {
				pattern(i+1, smallBufs[r][i].Data)
			}
		}
		largeBufs[r] = w.NewBufferAt(fmt.Sprintf("l%d", r), r, large)
		if r == root {
			pattern(99, largeBufs[r].Data)
		}
	}
	if err := w.Run(func(p *env.Proc) {
		reqs := make([]*Request, 0, k+1)
		for i := 0; i < k; i++ {
			reqs = append(reqs, c.Ibcast(p, smallBufs[p.Rank][i], 0, small, root))
		}
		reqs = append(reqs, c.Ibcast(p, largeBufs[p.Rank], 0, large, root))
		if got := c.InFlight(); got < int64(len(reqs)) && p.Rank == 0 {
			// All five were just issued from this rank alone.
			t.Errorf("in-flight %d < %d", got, len(reqs))
		}
		p.Compute(1000)
		// FIFO completion per lane: whenever a later request is done, all
		// earlier ones must be too.
		for i := len(reqs) - 1; i > 0; i-- {
			if reqs[i].Done() && !reqs[i-1].Done() {
				t.Errorf("rank %d: request %d done before %d", p.Rank, i, i-1)
			}
		}
		Waitall(p, reqs...)
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nranks; r++ {
		for i := 0; i < k; i++ {
			if !bytes.Equal(smallBufs[r][i].Data, smallBufs[root][i].Data) {
				t.Fatalf("rank %d small op %d: wrong payload", r, i)
			}
		}
		if !bytes.Equal(largeBufs[r].Data, largeBufs[root].Data) {
			t.Fatalf("rank %d large op: wrong payload", r)
		}
	}
}

// TestIcollectiveMixedKinds interleaves every non-blocking kind plus a
// blocking call issued while requests are outstanding (the issue-order
// gate diverts it through the queue).
func TestIcollectiveMixedKinds(t *testing.T) {
	top := topo.Epyc2P()
	nranks := 12
	n := 512
	w := world(t, top, nranks)
	c := MustNew(w, DefaultConfig())
	type bufs struct {
		bc, sb, rb, gin, gout, sroot, sout *mem.Buffer
	}
	bs := make([]bufs, nranks)
	for r := 0; r < nranks; r++ {
		bs[r] = bufs{
			bc:    w.NewBufferAt(fmt.Sprintf("bc%d", r), r, n),
			sb:    w.NewBufferAt(fmt.Sprintf("sb%d", r), r, n),
			rb:    w.NewBufferAt(fmt.Sprintf("rb%d", r), r, n),
			gin:   w.NewBufferAt(fmt.Sprintf("gi%d", r), r, 64),
			gout:  w.NewBufferAt(fmt.Sprintf("go%d", r), r, 64*nranks),
			sroot: w.NewBufferAt(fmt.Sprintf("sr%d", r), r, 64*nranks),
			sout:  w.NewBufferAt(fmt.Sprintf("so%d", r), r, 64),
		}
		pattern(0, bs[0].bc.Data)
		vals := make([]float64, n/8)
		for i := range vals {
			vals[i] = float64(r + i)
		}
		mpi.EncodeFloat64s(bs[r].sb.Data, vals)
		pattern(r+40, bs[r].gin.Data)
		pattern(77, bs[0].sroot.Data)
	}
	if err := w.Run(func(p *env.Proc) {
		me := &bs[p.Rank]
		r1 := c.Ibcast(p, me.bc, 0, n, 0)
		r2 := c.Iallreduce(p, me.sb, me.rb, n, mpi.Float64, mpi.Sum)
		r3 := c.Ibarrier(p)
		r4 := c.Iallgather(p, me.gin, me.gout, 64)
		r5 := c.Iscatter(p, me.sroot, me.sout, 64, 0)
		// A blocking barrier while five requests are in flight: must run
		// after all of them on this rank.
		c.Barrier(p)
		for _, r := range []*Request{r1, r2, r3, r4, r5} {
			if !r.Done() {
				t.Errorf("rank %d: blocking call overtook an outstanding request", p.Rank)
			}
		}
		// Requests are consumed in mixed Test/Wait style.
		for !r5.Test(p) {
		}
		Waitall(p, r1, r2, r3, r4)
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nranks; r++ {
		if !bytes.Equal(bs[r].bc.Data, bs[0].bc.Data) {
			t.Fatalf("rank %d: bcast payload wrong", r)
		}
		got := make([]float64, n/8)
		mpi.DecodeFloat64s(bs[r].rb.Data, got)
		for i := range got {
			want := 0.0
			for rr := 0; rr < nranks; rr++ {
				want += float64(rr + i)
			}
			if got[i] != want {
				t.Fatalf("rank %d: allreduce[%d] = %v want %v", r, i, got[i], want)
			}
		}
		for rr := 0; rr < nranks; rr++ {
			if !bytes.Equal(bs[r].gout.Data[rr*64:(rr+1)*64], bs[rr].gin.Data) {
				t.Fatalf("rank %d: allgather block %d wrong", r, rr)
			}
		}
		if !bytes.Equal(bs[r].sout.Data, bs[0].sroot.Data[r*64:(r+1)*64]) {
			t.Fatalf("rank %d: scatter block wrong", r)
		}
	}
}

// TestSplitConcurrentComms runs collectives concurrently on a parent
// communicator and two overlapping split children sharing the same world,
// memory system and flag space — the tags keep the control lines disjoint.
func TestSplitConcurrentComms(t *testing.T) {
	top := topo.Epyc2P()
	nranks := 12
	n := 4 << 10
	w := world(t, top, nranks)
	parent := MustNew(w, DefaultConfig())
	subA := []int{0, 2, 4, 6, 8, 10}
	subB := []int{0, 1, 2, 3, 4, 5, 6, 7}
	ca, err := parent.Split(subA, "a")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := parent.Split(subB, "b")
	if err != nil {
		t.Fatal(err)
	}
	inA := make(map[int]int, len(subA)) // parent rank -> sub rank
	for i, r := range subA {
		inA[r] = i
	}
	inB := make(map[int]int, len(subB))
	for i, r := range subB {
		inB[r] = i
	}
	mk := func(tag string, r int) *mem.Buffer {
		return w.NewBufferAt(fmt.Sprintf("%s%d", tag, r), r, n)
	}
	pbufs := make([]*mem.Buffer, nranks)
	abufs := make([]*mem.Buffer, nranks)
	bbufs := make([]*mem.Buffer, nranks)
	for r := 0; r < nranks; r++ {
		pbufs[r] = mk("p", r)
		abufs[r] = mk("a", r)
		bbufs[r] = mk("b", r)
	}
	pattern(1, pbufs[0].Data)
	pattern(2, abufs[subA[1]].Data) // root = sub rank 1 of comm A
	pattern(3, bbufs[subB[0]].Data)
	if err := w.Run(func(p *env.Proc) {
		var reqs []*Request
		reqs = append(reqs, parent.Ibcast(p, pbufs[p.Rank], 0, n, 0))
		if i, ok := inA[p.Rank]; ok {
			pa := ca.W.ProcOn(p.S, i)
			reqs = append(reqs, ca.Ibcast(pa, abufs[p.Rank], 0, n, 1))
		}
		if i, ok := inB[p.Rank]; ok {
			pb := cb.W.ProcOn(p.S, i)
			reqs = append(reqs, cb.Ibcast(pb, bbufs[p.Rank], 0, n, 0))
		}
		Waitall(p, reqs...)
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nranks; r++ {
		if !bytes.Equal(pbufs[r].Data, pbufs[0].Data) {
			t.Fatalf("parent comm: rank %d wrong", r)
		}
	}
	for _, r := range subA {
		if !bytes.Equal(abufs[r].Data, abufs[subA[1]].Data) {
			t.Fatalf("comm A: rank %d wrong", r)
		}
	}
	for _, r := range subB {
		if !bytes.Equal(bbufs[r].Data, bbufs[subB[0]].Data) {
			t.Fatalf("comm B: rank %d wrong", r)
		}
	}
}

// TestFusedRaggedBatches forces ragged batch boundaries: the root issues
// its small broadcasts in two separated bursts while members issue all of
// them up front, so member batches span two root batches.
func TestFusedRaggedBatches(t *testing.T) {
	top := topo.Epyc2P()
	nranks, root := 16, 0
	small, k := 128, 6
	w := world(t, top, nranks)
	c := MustNew(w, DefaultConfig())
	bufs := make([][]*mem.Buffer, nranks)
	for r := 0; r < nranks; r++ {
		bufs[r] = make([]*mem.Buffer, k)
		for i := 0; i < k; i++ {
			bufs[r][i] = w.NewBufferAt(fmt.Sprintf("f%d.%d", r, i), r, small)
			if r == root {
				pattern(i+7, bufs[r][i].Data)
			}
		}
	}
	if err := w.Run(func(p *env.Proc) {
		reqs := make([]*Request, 0, k)
		if p.Rank == root {
			for i := 0; i < k/2; i++ {
				reqs = append(reqs, c.Ibcast(p, bufs[p.Rank][i], 0, small, root))
			}
			p.Compute(5000) // let the first root batch retire before the rest queue
			for i := k / 2; i < k; i++ {
				reqs = append(reqs, c.Ibcast(p, bufs[p.Rank][i], 0, small, root))
			}
		} else {
			for i := 0; i < k; i++ {
				reqs = append(reqs, c.Ibcast(p, bufs[p.Rank][i], 0, small, root))
			}
		}
		Waitall(p, reqs...)
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nranks; r++ {
		for i := 0; i < k; i++ {
			if !bytes.Equal(bufs[r][i].Data, bufs[root][i].Data) {
				t.Fatalf("rank %d op %d: wrong payload", r, i)
			}
		}
	}
}
