package core

import (
	"reflect"
	"strings"
	"testing"

	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/obs"
	"xhc/internal/sim"
	"xhc/internal/topo"
)

// observe installs a fresh registry as the process-wide world observer for
// the duration of one test body (worlds must be constructed while it is
// installed).
func observe(t *testing.T, trace bool) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry(trace)
	env.ObserveWorlds(reg)
	t.Cleanup(func() { env.Observer = nil })
	return reg
}

// TestCritBlameSumsToOpLatency is the pinned exactness gate of the
// critical-path analyzer: in a virtual-time world the segment clock
// partitions every operation, so the per-edge blame of the run sums
// EXACTLY to the summed critical-lane latency — no tolerance. The span
// graph built from the trace must show the same property per op: each
// critical path covers its operation's full [Start, End].
func TestCritBlameSumsToOpLatency(t *testing.T) {
	reg := observe(t, true)
	top := topo.Epyc1P()
	w := world(t, top, 8)
	c := MustNew(w, DefaultConfig())
	const n, iters = 4096, 6
	bufs := make([]*mem.Buffer, 8)
	for r := range bufs {
		bufs[r] = w.NewBufferAt("b", r, n)
	}
	if err := w.Run(func(p *env.Proc) {
		for it := 0; it < iters; it++ {
			p.HarnessBarrier() // aligned entries: op Start is rank-uniform
			c.Bcast(p, bufs[p.Rank], 0, n, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}

	blame, total, ops := w.Obs.Rec.CritTicks()
	if ops != iters {
		t.Fatalf("crit ops = %d, want %d", ops, iters)
	}
	if total <= 0 {
		t.Fatal("crit total is zero — no critical-lane latency accumulated")
	}
	var sum int64
	for e := obs.EdgeKind(0); e < obs.NEdges; e++ {
		sum += blame[e]
	}
	if sum != total {
		t.Fatalf("per-edge blame sums to %d ticks, measured critical-lane latency is %d ticks (exactness invariant)", sum, total)
	}
	if blame[obs.EdgeQueueWait] != 0 || blame[obs.EdgeFabric] != 0 {
		t.Errorf("blocking single-node run charged overlay edges: queue_wait=%d fabric=%d",
			blame[obs.EdgeQueueWait], blame[obs.EdgeFabric])
	}
	// The last-finishing lane of an aligned bcast is the root: its ack
	// freeze guard waits for every member's final ack, so expose/copy/ack
	// all carry blame.
	if blame[obs.EdgeExpose] == 0 || blame[obs.EdgeChunkCopy] == 0 || blame[obs.EdgeAck] == 0 {
		t.Errorf("bcast critical path missing expose/copy/ack blame: %v", blame)
	}

	// Span-graph view of the same run: every op's causal walk reaches the
	// op start, so coverage is exact there too.
	trs := reg.Tracers()
	if len(trs) != 1 {
		t.Fatalf("tracers = %d, want 1", len(trs))
	}
	g := obs.NewSpanGraph(trs[0].Spans())
	cps := g.CriticalPaths()
	found := 0
	for _, cp := range cps {
		if cp.Op != obs.OpBcast.String() {
			continue
		}
		found++
		if cp.Covered != cp.End-cp.Start {
			t.Errorf("op %s seq %d: walk covered %d of %d ticks (must be exact in virtual time)",
				cp.Op, cp.Seq, cp.Covered, cp.End-cp.Start)
		}
		if cp.Bytes != n {
			t.Errorf("op %s seq %d: umbrella bytes = %d, want %d", cp.Op, cp.Seq, cp.Bytes, n)
		}
	}
	if found != iters {
		t.Errorf("span graph holds %d bcast critical paths, want %d", found, iters)
	}
}

// TestClusterCritBlameAndNetEdges drives the observed cluster path: the
// intra-node blame exactness holds per shard, and the leaders' NIC/fabric
// records show up as nic_stage/fabric overlay blame in the merged
// snapshot.
func TestClusterCritBlameAndNetEdges(t *testing.T) {
	reg := observe(t, false)
	cw, cc := clusterFixture(t, 4, 2)
	const n = 8192
	if err := cw.Run(func(p *env.Proc, node int) {
		buf := p.NewBuffer("b", n)
		for it := 0; it < 3; it++ {
			cw.HarnessBarrier(p, node)
			cc.Bcast(p, node, buf, 0, n, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for ni, w := range cw.Nodes {
		blame, total, ops := w.Obs.Rec.CritTicks()
		if ops == 0 || total == 0 {
			t.Fatalf("node %d: no critical-path steps recorded", ni)
		}
		var intra int64
		for e := obs.EdgeExpose; e <= obs.EdgeAck; e++ {
			intra += blame[e]
		}
		if intra != total {
			t.Errorf("node %d: intra-node blame %d != critical-lane total %d", ni, intra, total)
		}
	}
	snap := reg.Snapshot()
	if snap.Value("crit.nic_stage.blame_us") <= 0 {
		t.Error("cluster run charged no nic_stage blame")
	}
	if snap.Value("crit.fabric.blame_us") <= 0 {
		t.Error("cluster run charged no fabric blame")
	}
	if snap.Value("crit.ops") <= 0 || snap.Value("crit.path_us") <= 0 {
		t.Error("snapshot missing crit.ops / crit.path_us")
	}
}

// TestClusterStragglerScanDetectsNodeSkew is the inject -> detect -> dump
// gate at 4 nodes: one whole node enters every collective late. Its local
// detector sees nothing (its ranks are mutually uniform), but the
// cross-node scan that ClusterWorld.Run performs at the end must trip and
// dump a merged, node-qualified cluster-straggler record. The delayed
// node is the relay tree's leaf (node 3): delaying an interior node would
// make its downstream neighbors arrive even later, and the scan blames
// the latest arrival.
func TestClusterStragglerScanDetectsNodeSkew(t *testing.T) {
	reg := observe(t, false)
	cw, cc := clusterFixture(t, 4, 2)
	const n = 4096
	if err := cw.Run(func(p *env.Proc, node int) {
		buf := p.NewBuffer("b", n)
		for it := 0; it < 2; it++ {
			cw.HarnessBarrier(p, node)
			if node == 3 {
				p.Compute(500 * sim.Microsecond) // the whole shard is late
			}
			cc.Bcast(p, node, buf, 0, n, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Value("anomaly.stragglers"); got < 1 {
		t.Fatalf("anomaly.stragglers = %v, want >= 1 (node-level skew undetected)", got)
	}
	var cluster *obs.FlightDump
	for _, d := range reg.Dumps() {
		if d.Kind == "cluster-straggler" {
			cluster = d
		}
	}
	if cluster == nil {
		t.Fatalf("no cluster-straggler dump among %d dumps", len(reg.Dumps()))
	}
	if !strings.Contains(cluster.Reason, "node 3") {
		t.Errorf("dump reason %q does not name node 3", cluster.Reason)
	}
	offending, nodes := 0, map[int]bool{}
	for _, e := range cluster.Records {
		nodes[e.Node] = true
		if e.Offending {
			offending++
			if e.Node != 3 {
				t.Errorf("offending record on node %d, want 3", e.Node)
			}
		}
	}
	if offending == 0 {
		t.Error("merged dump marks no offending record")
	}
	if len(nodes) != 4 {
		t.Errorf("merged dump covers %d nodes, want all 4", len(nodes))
	}
}

// TestClusterSnapshotWorkerInvariance pins observability determinism on
// the sharded engine: the full registry snapshot — histogram cells,
// critical-path blame, every counter — is bit-identical whether the
// cluster ran its shards on one worker or many.
func TestClusterSnapshotWorkerInvariance(t *testing.T) {
	run := func(workers int) obs.Snapshot {
		reg := observe(t, false)
		cw, cc := clusterFixture(t, 4, 4)
		cw.Workers = workers
		const n = 16384
		if err := cw.Run(func(p *env.Proc, node int) {
			buf := p.NewBuffer("b", n)
			for it := 0; it < 3; it++ {
				cw.HarnessBarrier(p, node)
				cc.Bcast(p, node, buf, 0, n, 0)
				cc.Barrier(p, node)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot()
	}
	ref := run(1)
	for _, workers := range []int{0, 4} { // 0: GOMAXPROCS
		got := run(workers)
		if !reflect.DeepEqual(ref.Metrics, got.Metrics) {
			for i := range ref.Metrics {
				if i < len(got.Metrics) && ref.Metrics[i] != got.Metrics[i] {
					t.Errorf("workers=%d: metric %q = %v, want %v", workers,
						got.Metrics[i].Name, got.Metrics[i].Value, ref.Metrics[i].Value)
				}
			}
			t.Fatalf("workers=%d: snapshot metrics differ from the sequential reference", workers)
		}
		if !reflect.DeepEqual(ref.Hists, got.Hists) {
			t.Fatalf("workers=%d: histogram cells differ from the sequential reference", workers)
		}
	}
}
