package core

import (
	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/obs"
	"xhc/internal/shm"
	"xhc/internal/xpmem"
)

// The paper's conclusions list extending XHC to further primitives as
// ongoing work; this file provides the natural next set — Scatter, Gather
// and Allgather — using the same machinery: exposure of the root's buffer,
// single-copy pulls/pushes through XPMEM with the registration cache, a
// CICO path for small per-rank blocks, and single-writer flags.

// Scatter distributes blockLen bytes to each rank from root's buf (which
// holds N consecutive blocks in rank order); each rank receives its block
// into out. A direct single-copy design: every rank attaches to the root's
// buffer and pulls exactly its own block — the hierarchy adds nothing for
// scatter's disjoint traffic, but the pull is still distance-aware via the
// memory model.
func (c *Comm) Scatter(p *env.Proc, buf *mem.Buffer, out *mem.Buffer, blockLen, root int) {
	if c.nbGated(p.Rank) {
		c.issueBlocking(p, c.buildReq(p.Rank, reqScatter, buf, out, 0, blockLen, root, 0, 0))
		return
	}
	c.scatter(p, buf, out, blockLen, root)
}

func (c *Comm) scatter(p *env.Proc, buf *mem.Buffer, out *mem.Buffer, blockLen, root int) {
	st := c.stateFor(root)
	view := st.views[p.Rank]
	view.opSeq++
	if p.Rank == 0 {
		c.Ops++
	}
	pc := c.newPhaseClock(p, obs.OpScatter, view.opSeq, int64(blockLen), st.h.NLevels())
	if blockLen == 0 {
		c.ackPhase(p, st, view, pc)
		pc.finish()
		return
	}
	if blockLen <= c.Cfg.CICOThreshold && blockLen*c.W.N <= c.Cfg.CICOBytes/2 {
		c.cicoScatter(p, st, view, buf, out, blockLen, root, pc)
		c.ackPhase(p, st, view, pc)
		pc.finish()
		return
	}
	gs := st.groups[st.h.NLevels()-1][0] // top group carries the exposure
	if p.Rank == root {
		sizeCheck(buf, 0, blockLen*c.W.N)
		gs.exposed = xpmem.Expose(buf)
		gs.exposedOff = 0
		gs.expSeq.Set(p.S, p.Core, view.opSeq)
		pc.mark(-1, obs.PhaseExpose, 0)
		p.Copy(out, 0, buf, blockLen*root, blockLen)
		pc.mark(-1, obs.PhaseChunkCopy, int64(blockLen))
	} else {
		sizeCheck(out, 0, blockLen)
		gs.expSeq.WaitGE(p.S, p.Core, view.opSeq)
		pc.markFrom(-1, obs.PhaseFlagWait, 0, c.W.Core(gs.leader))
		src := c.caches[p.Rank].Attach(p.S, gs.exposed)
		pc.mark(-1, obs.PhaseExpose, 0)
		p.Copy(out, 0, src, gs.exposedOff+blockLen*p.Rank, blockLen)
		pc.mark(-1, obs.PhaseChunkCopy, int64(blockLen))
		c.caches[p.Rank].Release(p.S, gs.exposed)
		pc.mark(-1, obs.PhaseExpose, 0)
		c.recordPull(root, p.Rank, blockLen)
	}
	c.ackPhase(p, st, view, pc)
	pc.finish()
}

// cicoScatter is the small-block copy-in-copy-out path: the root stages all
// N blocks into its CICO buffer in one shot (they fit below the threshold by
// construction), announces via the top group's exposure sequence, and every
// rank copies out exactly its own block — no attach/expose round-trips for
// latency-bound sizes (paper Section IV-C).
func (c *Comm) cicoScatter(p *env.Proc, st *commState, view *rankView, buf *mem.Buffer, out *mem.Buffer, blockLen, root int, pc *phaseClock) {
	gs := st.groups[st.h.NLevels()-1][0]
	slot := int(view.opSeq) % 2 * (c.Cfg.CICOBytes / 2) // double-buffered slots
	if p.Rank == root {
		sizeCheck(buf, 0, blockLen*c.W.N)
		if c.chaos().EarlyReady {
			// Mutation: announce the staged blocks before the copy-in lands.
			gs.expSeq.Set(p.S, p.Core, view.opSeq)
		}
		p.Copy(c.cico[root], slot, buf, 0, blockLen*c.W.N)
		if !c.chaos().EarlyReady {
			gs.expSeq.Set(p.S, p.Core, view.opSeq)
		}
		p.Copy(out, 0, buf, blockLen*root, blockLen)
		pc.mark(-1, obs.PhaseChunkCopy, int64(blockLen*c.W.N))
	} else {
		sizeCheck(out, 0, blockLen)
		gs.expSeq.WaitGE(p.S, p.Core, view.opSeq)
		pc.markFrom(-1, obs.PhaseFlagWait, 0, c.W.Core(root))
		p.Copy(out, 0, c.cico[root], slot+blockLen*p.Rank, blockLen)
		pc.mark(-1, obs.PhaseChunkCopy, int64(blockLen))
		c.recordPull(root, p.Rank, blockLen)
	}
}

// Gather collects blockLen bytes from each rank's in buffer into root's
// buf (N consecutive blocks in rank order). Push-based single-copy: the
// root exposes its receive buffer, every rank attaches and writes its own
// disjoint block directly — the inverse of the broadcast pull.
func (c *Comm) Gather(p *env.Proc, in *mem.Buffer, buf *mem.Buffer, blockLen, root int) {
	if c.nbGated(p.Rank) {
		c.issueBlocking(p, c.buildReq(p.Rank, reqGather, in, buf, 0, blockLen, root, 0, 0))
		return
	}
	c.gather(p, in, buf, blockLen, root)
}

func (c *Comm) gather(p *env.Proc, in *mem.Buffer, buf *mem.Buffer, blockLen, root int) {
	st := c.stateFor(root)
	view := st.views[p.Rank]
	view.opSeq++
	if p.Rank == 0 {
		c.Ops++
	}
	pc := c.newPhaseClock(p, obs.OpGather, view.opSeq, int64(blockLen), st.h.NLevels())
	if blockLen == 0 {
		c.ackPhase(p, st, view, pc)
		pc.finish()
		return
	}
	gs := st.groups[st.h.NLevels()-1][0]
	if p.Rank == root {
		sizeCheck(buf, 0, blockLen*c.W.N)
		gs.accExposed = xpmem.Expose(buf)
		gs.accExposedOff = 0
		gs.accExpSeq.Set(p.S, p.Core, view.opSeq)
		pc.mark(-1, obs.PhaseExpose, 0)
		p.Copy(buf, blockLen*root, in, 0, blockLen)
		pc.mark(-1, obs.PhaseChunkCopy, int64(blockLen))
	} else {
		sizeCheck(in, 0, blockLen)
		gs.accExpSeq.WaitGE(p.S, p.Core, view.opSeq)
		pc.markFrom(-1, obs.PhaseFlagWait, 0, c.W.Core(gs.leader))
		dst := c.caches[p.Rank].Attach(p.S, gs.accExposed)
		pc.mark(-1, obs.PhaseExpose, 0)
		p.Copy(dst, gs.accExposedOff+blockLen*p.Rank, in, 0, blockLen)
		pc.mark(-1, obs.PhaseChunkCopy, int64(blockLen))
		c.caches[p.Rank].Release(p.S, gs.accExposed)
		pc.mark(-1, obs.PhaseExpose, 0)
		c.recordPull(p.Rank, root, blockLen)
	}
	// The ack phase doubles as the completion notification: the root's
	// return is gated on every rank having pushed its block.
	c.ackPhase(p, st, view, pc)
	pc.finish()
}

// Allgather concatenates every rank's blockLen-byte in block into each
// rank's out buffer (N blocks in rank order), hierarchically: blocks are
// gathered into the leaders' buffers level by level, then the assembled
// result is broadcast back down with the pipelined broadcast.
func (c *Comm) Allgather(p *env.Proc, in *mem.Buffer, out *mem.Buffer, blockLen int) {
	if c.nbGated(p.Rank) {
		c.issueBlocking(p, c.buildReq(p.Rank, reqAllgather, in, out, 0, blockLen, 0, 0, 0))
		return
	}
	c.allgather(p, in, out, blockLen)
}

func (c *Comm) allgather(p *env.Proc, in *mem.Buffer, out *mem.Buffer, blockLen int) {
	if blockLen == 0 {
		st := c.stateFor(0)
		view := st.views[p.Rank]
		view.opSeq++
		pc := c.newPhaseClock(p, obs.OpAllgather, view.opSeq, 0, st.h.NLevels())
		c.ackPhase(p, st, view, pc)
		pc.finish()
		return
	}
	n := blockLen * c.W.N
	sizeCheck(in, 0, blockLen)
	sizeCheck(out, 0, n)
	st := c.stateFor(0)
	view := st.views[p.Rank]
	view.opSeq++
	if p.Rank == 0 {
		c.Ops++
	}
	pc := c.newPhaseClock(p, obs.OpAllgather, view.opSeq, int64(blockLen), st.h.NLevels())

	if blockLen <= c.Cfg.CICOThreshold && blockLen <= c.Cfg.CICOBytes/2 {
		c.cicoAllgather(p, st, view, in, out, blockLen, pc)
		c.ackPhase(p, st, view, pc)
		pc.finish()
		return
	}

	// Phase 1: every rank pushes its block into the internal root's out
	// buffer (rank 0), which assembles the full vector. Leaders are not
	// needed for disjoint pushes; the memory model charges the distances.
	gs := st.groups[st.h.NLevels()-1][0]
	if p.Rank == 0 {
		gs.accExposed = xpmem.Expose(out)
		gs.accExposedOff = 0
		gs.accExpSeq.Set(p.S, p.Core, view.opSeq)
		pc.mark(-1, obs.PhaseExpose, 0)
		p.Copy(out, 0, in, 0, blockLen)
		pc.mark(-1, obs.PhaseChunkCopy, int64(blockLen))
		// Wait for all pushes (push counters reuse the redReady flags of
		// the top group's members plus a shared arrival account below).
		var flags []*shm.Flag
		for r := 1; r < c.W.N; r++ {
			flags = append(flags, c.agDone(st, r))
		}
		shm.WaitAllGE(p.S, p.Core, flags, view.opSeq)
		pc.mark(-1, obs.PhaseFlagWait, 0)
	} else {
		gs.accExpSeq.WaitGE(p.S, p.Core, view.opSeq)
		pc.mark(-1, obs.PhaseFlagWait, 0)
		dst := c.caches[p.Rank].Attach(p.S, gs.accExposed)
		pc.mark(-1, obs.PhaseExpose, 0)
		p.Copy(dst, gs.accExposedOff+blockLen*p.Rank, in, 0, blockLen)
		pc.mark(-1, obs.PhaseChunkCopy, int64(blockLen))
		c.caches[p.Rank].Release(p.S, gs.accExposed)
		c.agDone(st, p.Rank).Set(p.S, p.Core, view.opSeq)
		pc.mark(-1, obs.PhaseExpose, 0)
	}

	// Phase 2: hierarchical pipelined broadcast of the assembled vector.
	// Reuse the bcast machinery (root = 0 has the data in `out`).
	c.bcastBody(p, st, view, out, 0, n, 0, pc)
	for l := range view.cumBytes {
		view.cumBytes[l] += uint64(n)
	}
	c.ackPhase(p, st, view, pc)
	pc.finish()
}

// cicoAllgather is the small-block copy-in-copy-out path: each rank stages
// its block into its own CICO buffer and publishes its push-completion flag,
// then assembles the full vector by copying every peer's staged block out —
// all-to-all reads of disjoint staged lines, with the memory model charging
// each pull's distance (paper Section IV-C applied to allgather).
func (c *Comm) cicoAllgather(p *env.Proc, st *commState, view *rankView, in *mem.Buffer, out *mem.Buffer, blockLen int, pc *phaseClock) {
	slot := int(view.opSeq) % 2 * (c.Cfg.CICOBytes / 2) // double-buffered slots
	if c.chaos().EarlyReady {
		// Mutation: publish the push before the copy-in lands.
		c.agDone(st, p.Rank).Set(p.S, p.Core, view.opSeq)
	}
	p.Copy(c.cico[p.Rank], slot, in, 0, blockLen)
	if !c.chaos().EarlyReady {
		c.agDone(st, p.Rank).Set(p.S, p.Core, view.opSeq)
	}
	pc.mark(-1, obs.PhaseChunkCopy, int64(blockLen))
	for r := 0; r < c.W.N; r++ {
		if r == p.Rank {
			p.Copy(out, blockLen*r, in, 0, blockLen)
			continue
		}
		c.agDone(st, r).WaitGE(p.S, p.Core, view.opSeq)
		p.Copy(out, blockLen*r, c.cico[r], slot, blockLen)
		c.recordPull(r, p.Rank, blockLen)
	}
	pc.mark(-1, obs.PhaseChunkCopy, int64(blockLen*(c.W.N-1)))
	pc.mark(-1, obs.PhaseFlagWait, 0)
}

// agDone returns rank's allgather push-completion flag (lazily created at
// comm setup granularity).
func (c *Comm) agDone(st *commState, rank int) *shm.Flag {
	if c.agFlags == nil {
		c.agFlags = map[*commState][]*shm.Flag{}
	}
	fl := c.agFlags[st]
	if fl == nil {
		fl = make([]*shm.Flag, c.W.N)
		for r := 0; r < c.W.N; r++ {
			fl[r] = shm.NewFlag(c.W.Sys, c.name("ag.%d", r), c.W.Core(r))
		}
		c.agFlags[st] = fl
	}
	return fl[rank]
}

// bcastBody runs the data-movement part of the hierarchical broadcast for
// an operation whose bookkeeping (opSeq, cum advance, acks) the caller
// manages. Used by Allgather's distribution phase.
func (c *Comm) bcastBody(p *env.Proc, st *commState, view *rankView, buf *mem.Buffer, off, n, root int, pc *phaseClock) {
	lead := st.leadLevels(p.Rank)
	pl := st.pullLevel(p.Rank)
	for _, l := range lead {
		gs, _ := st.groupOf(l, p.Rank)
		gs.exposed = xpmem.Expose(buf)
		gs.exposedOff = off
		gs.expSeq.Set(p.S, p.Core, view.opSeq)
	}
	pc.mark(-1, obs.PhaseExpose, 0)
	if p.Rank == root {
		for _, l := range lead {
			gs, _ := st.groupOf(l, p.Rank)
			c.setReady(p, gs, view.cumBytes[l]+uint64(n))
		}
		pc.mark(-1, obs.PhaseChunkCopy, int64(n))
		return
	}
	gs, _ := st.groupOf(pl, p.Rank)
	gs.expSeq.WaitGE(p.S, p.Core, view.opSeq)
	pc.markFrom(pl, obs.PhaseFlagWait, 0, c.W.Core(gs.leader))
	src := c.caches[p.Rank].Attach(p.S, gs.exposed)
	soff := gs.exposedOff
	pc.mark(pl, obs.PhaseExpose, 0)
	base := view.cumBytes[pl]
	chunk := c.chunkAt(pl)
	copied := 0
	for copied < n {
		want := min(chunk, n-copied)
		avail := int(c.waitReady(p, gs, base+uint64(copied+want)) - base)
		if avail > n {
			avail = n
		}
		pc.markFrom(pl, obs.PhaseFlagWait, 0, c.W.Core(gs.leader))
		before := copied
		for copied < avail {
			take := min(chunk, avail-copied)
			p.Copy(buf, off+copied, src, soff+copied, take)
			copied += take
			for _, l := range lead {
				lgs, _ := st.groupOf(l, p.Rank)
				c.setReady(p, lgs, view.cumBytes[l]+uint64(copied))
			}
		}
		pc.mark(pl, obs.PhaseChunkCopy, int64(copied-before))
	}
	c.caches[p.Rank].Release(p.S, gs.exposed)
	pc.mark(pl, obs.PhaseExpose, 0)
	c.recordPull(gs.leader, p.Rank, n)
}
