package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"xhc/internal/env"
	"xhc/internal/mpi"
	"xhc/internal/sim"
	"xhc/internal/topo"
)

func clusterFixture(t *testing.T, nodes, perNode int) (*env.ClusterWorld, *ClusterComm) {
	t.Helper()
	node := topo.Epyc1P()
	cl, err := topo.NewCluster(nodes, node)
	if err != nil {
		t.Fatal(err)
	}
	m, err := node.Map(topo.MapCore, perNode)
	if err != nil {
		t.Fatal(err)
	}
	cw := env.NewClusterWorldDefault(cl, m)
	cw.Workers = 1
	cc, err := NewCluster(cw, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return cw, cc
}

// TestClusterBcast broadcasts a distinctive pattern from every possible
// root node position (including non-zero local roots) and checks every
// rank receives it byte-exactly.
func TestClusterBcast(t *testing.T) {
	for _, root := range []int{0, 1, 5, 7} {
		cw, cc := clusterFixture(t, 4, 2)
		n := 4096
		want := make([]byte, n)
		for i := range want {
			want[i] = byte(i*7 + root)
		}
		bad := 0
		err := cw.Run(func(p *env.Proc, node int) {
			g := cw.GlobalRank(node, p.Rank)
			buf := p.NewBuffer("b", n)
			if g == root {
				copy(buf.Data, want)
				p.Dirty(buf)
			}
			cc.Bcast(p, node, buf, 0, n, root)
			if !bytes.Equal(buf.Data, want) {
				bad++
			}
		})
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		if bad != 0 {
			t.Fatalf("root %d: %d ranks with wrong bcast payload", root, bad)
		}
	}
}

// TestClusterAllreduce sums per-rank float64 vectors across a 4x4 cluster
// and checks every rank holds the exact global sum.
func TestClusterAllreduce(t *testing.T) {
	cw, cc := clusterFixture(t, 4, 4)
	elems := 257 // odd length exercises partial chunks
	n := elems * 8
	bad := 0
	err := cw.Run(func(p *env.Proc, node int) {
		g := cw.GlobalRank(node, p.Rank)
		sbuf := p.NewBuffer("s", n)
		rbuf := p.NewBuffer("r", n)
		for i := 0; i < elems; i++ {
			v := float64((g+1)*(i+1) - 50)
			binary.LittleEndian.PutUint64(sbuf.Data[i*8:], math.Float64bits(v))
		}
		p.Dirty(sbuf)
		cc.Allreduce(p, node, sbuf, rbuf, n, mpi.Float64, mpi.Sum)
		for i := 0; i < elems; i++ {
			var want float64
			for r := 0; r < cw.N; r++ {
				want += float64((r+1)*(i+1) - 50)
			}
			got := mathFloat64frombits(binary.LittleEndian.Uint64(rbuf.Data[i*8:]))
			if got != want {
				bad++
				break
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d ranks with wrong allreduce result", bad)
	}
}

// TestClusterReduce checks the rooted variant with a non-zero root on a
// non-zero node, and that non-root recv buffers stay untouched.
func TestClusterReduce(t *testing.T) {
	cw, cc := clusterFixture(t, 4, 2)
	root := 5 // node 2, local rank 1
	elems := 64
	n := elems * 8
	bad := 0
	clobbered := 0
	err := cw.Run(func(p *env.Proc, node int) {
		g := cw.GlobalRank(node, p.Rank)
		sbuf := p.NewBuffer("s", n)
		rbuf := p.NewBuffer("r", n)
		for i := range rbuf.Data {
			rbuf.Data[i] = 0xEE
		}
		for i := 0; i < elems; i++ {
			binary.LittleEndian.PutUint64(sbuf.Data[i*8:], mathFloat64bits(float64(g+i)))
		}
		p.Dirty(sbuf)
		p.Dirty(rbuf)
		cc.Reduce(p, node, sbuf, rbuf, n, mpi.Float64, mpi.Sum, root)
		if g == root {
			for i := 0; i < elems; i++ {
				var want float64
				for r := 0; r < cw.N; r++ {
					want += float64(r + i)
				}
				got := mathFloat64frombits(binary.LittleEndian.Uint64(rbuf.Data[i*8:]))
				if got != want {
					bad++
					break
				}
			}
		} else {
			for _, b := range rbuf.Data {
				if b != 0xEE {
					clobbered++
					break
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatal("wrong reduce result at root")
	}
	if clobbered != 0 {
		t.Fatalf("%d non-root ranks had rbuf clobbered", clobbered)
	}
}

// TestClusterBarrier pins the barrier semantics: no rank leaves the
// barrier before every rank has entered it (virtual-time comparison of
// the last entry against the first exit).
func TestClusterBarrier(t *testing.T) {
	cw, cc := clusterFixture(t, 3, 3)
	enter := make([]sim.Time, cw.N)
	exit := make([]sim.Time, cw.N)
	err := cw.Run(func(p *env.Proc, node int) {
		g := cw.GlobalRank(node, p.Rank)
		p.Compute(sim.Duration(g*g) * 100 * sim.Nanosecond) // skewed arrivals
		enter[g] = p.Now()
		cc.Barrier(p, node)
		exit[g] = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	var lastEnter sim.Time
	for _, at := range enter {
		if at > lastEnter {
			lastEnter = at
		}
	}
	for g, at := range exit {
		if at < lastEnter {
			t.Fatalf("rank %d left the barrier at %d, before last entry %d", g, at, lastEnter)
		}
	}
}

// TestClusterZeroBytes drives the three collectives with n=0: they must
// complete (ack/ordering semantics only) without touching the fabric data
// path incorrectly.
func TestClusterZeroBytes(t *testing.T) {
	cw, cc := clusterFixture(t, 2, 2)
	err := cw.Run(func(p *env.Proc, node int) {
		buf := p.NewBuffer("b", 8)
		r := p.NewBuffer("r", 8)
		cc.Bcast(p, node, buf, 0, 0, 0)
		cc.Allreduce(p, node, buf, r, 0, mpi.Float64, mpi.Sum)
		cc.Barrier(p, node)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestClusterOneElement is the 1-element fabric edge: an 8-byte payload
// through the staged fabric path.
func TestClusterOneElement(t *testing.T) {
	cw, cc := clusterFixture(t, 2, 2)
	bad := 0
	err := cw.Run(func(p *env.Proc, node int) {
		g := cw.GlobalRank(node, p.Rank)
		sbuf := p.NewBuffer("s", 8)
		rbuf := p.NewBuffer("r", 8)
		binary.LittleEndian.PutUint64(sbuf.Data, mathFloat64bits(float64(g+1)))
		p.Dirty(sbuf)
		cc.Allreduce(p, node, sbuf, rbuf, 8, mpi.Float64, mpi.Sum)
		if got := mathFloat64frombits(binary.LittleEndian.Uint64(rbuf.Data)); got != 1+2+3+4 {
			bad++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatal("wrong 1-element allreduce result")
	}
}

// TestClusterCommWorkerInvariance runs a full collective at several worker
// counts and demands bit-equal fingerprints — the core-level half of the
// sharded-vs-single-threaded gate.
func TestClusterCommWorkerInvariance(t *testing.T) {
	run := func(workers int) uint64 {
		cw, cc := clusterFixture(t, 4, 4)
		cw.Workers = workers
		cw.EnableScheduleHash()
		n := 16384
		err := cw.Run(func(p *env.Proc, node int) {
			g := cw.GlobalRank(node, p.Rank)
			sbuf := p.NewBuffer("s", n)
			rbuf := p.NewBuffer("r", n)
			for i := 0; i < n/8; i++ {
				binary.LittleEndian.PutUint64(sbuf.Data[i*8:], mathFloat64bits(float64(g^i)))
			}
			p.Dirty(sbuf)
			for it := 0; it < 3; it++ {
				cw.HarnessBarrier(p, node)
				cc.Allreduce(p, node, sbuf, rbuf, n, mpi.Float64, mpi.Sum)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return cw.Fingerprint()
	}
	h1 := run(1)
	for _, w := range []int{2, 4} {
		if h := run(w); h != h1 {
			t.Fatalf("workers=%d fingerprint %#x, want %#x", w, h, h1)
		}
	}
}

func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
