package shm

import (
	"fmt"
	"testing"

	"xhc/internal/mem"
	"xhc/internal/sim"
	"xhc/internal/topo"
)

func TestSingleWriterEnforced(t *testing.T) {
	s := mem.Default(topo.Epyc1P())
	f := NewFlag(s, "f", 0)
	s.Eng.Go("intruder", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("non-owner write should panic")
			}
		}()
		f.Set(p, 3, 1)
	})
	_ = s.Eng.Run()
}

func TestFlagBackwardsPanics(t *testing.T) {
	s := mem.Default(topo.Epyc1P())
	f := NewFlag(s, "f", 0)
	err := func() error {
		s.Eng.Go("owner", func(p *sim.Proc) {
			f.Set(p, 0, 5)
			f.Set(p, 0, 4)
		})
		return s.Eng.Run()
	}()
	if err == nil {
		t.Error("backwards set should fail the run")
	}
}

func TestWaitGEWakesOnWrite(t *testing.T) {
	s := mem.Default(topo.Epyc1P())
	f := NewFlag(s, "counter", 0)
	var observed uint64
	var when sim.Time
	s.Eng.Go("reader", func(p *sim.Proc) {
		observed = f.WaitGE(p, 8, 3)
		when = p.Now()
	})
	s.Eng.Go("owner", func(p *sim.Proc) {
		for v := uint64(1); v <= 3; v++ {
			p.Sleep(1 * sim.Microsecond)
			f.Set(p, 0, v)
		}
	})
	if err := s.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if observed < 3 {
		t.Errorf("observed %d, want >= 3", observed)
	}
	if when < 3*sim.Microsecond {
		t.Errorf("reader returned at %s, before the third write", sim.FmtTime(when))
	}
}

func TestWaitGEImmediate(t *testing.T) {
	s := mem.Default(topo.Epyc1P())
	f := NewFlag(s, "f", 0)
	s.Eng.Go("owner", func(p *sim.Proc) {
		f.Set(p, 0, 10)
	})
	if err := s.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	var got uint64
	s.Eng.Go("reader", func(p *sim.Proc) {
		got = f.WaitGE(p, 5, 10)
	})
	if err := s.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("got %d, want 10", got)
	}
}

func TestManyWaitersAllWake(t *testing.T) {
	s := mem.Default(topo.Epyc2P())
	f := NewFlag(s, "go", 0)
	done := 0
	for r := 1; r < 64; r++ {
		core := r
		s.Eng.Go(fmt.Sprintf("w%d", r), func(p *sim.Proc) {
			f.WaitGE(p, core, 1)
			done++
		})
	}
	s.Eng.Go("owner", func(p *sim.Proc) {
		p.Sleep(5 * sim.Microsecond)
		f.Set(p, 0, 1)
	})
	if err := s.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 63 {
		t.Errorf("done = %d, want 63", done)
	}
}

func TestAtomicFetchAddSerializesAndCounts(t *testing.T) {
	s := mem.Default(topo.ArmN1())
	f := NewAtomicFlag(s, "ctr", 0)
	olds := map[uint64]bool{}
	for r := 0; r < 40; r++ {
		core := r
		s.Eng.Go(fmt.Sprintf("a%d", r), func(p *sim.Proc) {
			old := f.FetchAdd(p, core, 1)
			if olds[old] {
				t.Errorf("duplicate old value %d: fetch-add not serialized", old)
			}
			olds[old] = true
		})
	}
	if err := s.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if f.Peek() != 40 {
		t.Errorf("final = %d, want 40", f.Peek())
	}
}

func TestAtomicWaitGE(t *testing.T) {
	s := mem.Default(topo.Epyc1P())
	f := NewAtomicFlag(s, "ctr", 0)
	var done bool
	s.Eng.Go("waiter", func(p *sim.Proc) {
		f.WaitGE(p, 31, 8)
		done = true
	})
	for r := 0; r < 8; r++ {
		core := r
		s.Eng.Go(fmt.Sprintf("inc%d", r), func(p *sim.Proc) {
			p.Sleep(sim.Microsecond * sim.Duration(core+1))
			f.FetchAdd(p, core, 1)
		})
	}
	if err := s.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("waiter did not complete")
	}
}

// TestSharedLineFalseSharing: two flags on one line; a write to flag A
// invalidates readers of flag B (they pay a fetch on their next read).
func TestSharedLineFalseSharing(t *testing.T) {
	s := mem.Default(topo.Epyc1P())
	line := s.NewLine(0)
	fa := NewFlagOnLine(s, "a", 0, line)
	fb := NewFlagOnLine(s, "b", 0, line)
	var cheap, costly sim.Duration
	s.Eng.Go("seq", func(p *sim.Proc) {
		// Reader on a far core warms the line via flag B.
		fb.Read(p, 8)
		t0 := p.Now()
		fb.Read(p, 8)
		cheap = p.Now() - t0
		p.Sleep(sim.Microsecond)
		// Owner writes flag A -> same line -> B's reader must refetch.
		fa.Set(p, 0, 1)
		t1 := p.Now()
		fb.Read(p, 8)
		costly = p.Now() - t1
	})
	if err := s.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if costly <= cheap {
		t.Errorf("false sharing should make re-read costly: %v vs %v", cheap, costly)
	}
}
