// Package shm provides the shared-memory control structures that XHC and
// the comparison frameworks synchronize through: single-writer flags
// (paper Section III-E), atomic flags (the OpenMPI-sm style the paper
// warns about), and helpers controlling how flags map onto cache lines
// (the Fig. 10 placement schemes).
package shm

import (
	"fmt"

	"xhc/internal/mem"
	"xhc/internal/sim"
)

// Flag is a single-writer, multiple-reader synchronization word in shared
// memory. Only the owner core may Set it; readers poll or block. Values
// are expected to be monotonically non-decreasing (sequence/byte counters),
// which is how all XHC control flags behave.
type Flag struct {
	Name      string
	OwnerCore int

	sys  *mem.System
	line *mem.Line
	val  uint64
}

// NewFlag allocates a flag on its own cache line homed at ownerCore (the
// paper's default: flags are "carefully placed on different cache lines").
func NewFlag(sys *mem.System, name string, ownerCore int) *Flag {
	return NewFlagOnLine(sys, name, ownerCore, sys.NewLine(ownerCore))
}

// NewFlagOnLine allocates a flag sharing the given cache line with other
// flags (the Fig. 10 "shared line" scheme). All flags on a line must have
// the same owner core for the single-writer discipline to hold per line.
func NewFlagOnLine(sys *mem.System, name string, ownerCore int, line *mem.Line) *Flag {
	return &Flag{Name: name, OwnerCore: ownerCore, sys: sys, line: line}
}

// Line exposes the underlying coherence line (for placement-scheme tests).
func (f *Flag) Line() *mem.Line { return f.line }

// Set stores v. It enforces the single-writer discipline: only the owner
// core may write, and values may not decrease.
func (f *Flag) Set(p *sim.Proc, core int, v uint64) {
	if core != f.OwnerCore {
		panic(fmt.Sprintf("shm: flag %q owned by core %d written from core %d",
			f.Name, f.OwnerCore, core))
	}
	if v < f.val {
		panic(fmt.Sprintf("shm: flag %q set backwards: %d -> %d", f.Name, f.val, v))
	}
	if f.sys.OnFlagWrite != nil {
		f.sys.OnFlagWrite(f.Name, f.line, core, v)
	}
	f.line.Write(p, core)
	f.val = v
}

// Read returns the current value, charging the reader for the line access.
func (f *Flag) Read(p *sim.Proc, core int) uint64 {
	f.line.Read(p, core)
	return f.val
}

// Peek returns the value without charging (for assertions in tests).
func (f *Flag) Peek() uint64 { return f.val }

// WaitGE blocks until the flag value is >= v, returning the observed
// value. Readers that miss block on the line and are woken by the owner's
// next store; the single-writer scheme means no atomics are involved.
func (f *Flag) WaitGE(p *sim.Proc, core int, v uint64) uint64 {
	for {
		got := f.Read(p, core)
		if got >= v {
			return got
		}
		// Re-check without yielding before arming the waiter: between the
		// charged Read above and this point no other process has run, so
		// no store can be lost.
		f.line.AddWaiter(p)
		p.Suspend(fmt.Sprintf("wait %s >= %d (have %d)", f.Name, v, f.val))
	}
}

// WaitAllGE blocks until every flag's value is >= v. The leader-side
// gather reads the members' flags with overlapping fetches (hardware
// memory-level parallelism) instead of one serialized miss per flag, and
// parks on all pending lines at once when some flags lag.
func WaitAllGE(p *sim.Proc, core int, flags []*Flag, v uint64) {
	targets := make([]uint64, len(flags))
	for i := range targets {
		targets[i] = v
	}
	WaitAllTargets(p, core, flags, targets)
}

// WaitAllTargets blocks until flags[i] >= targets[i] for every i, with the
// same overlapped-fetch gather as WaitAllGE.
func WaitAllTargets(p *sim.Proc, core int, flags []*Flag, targets []uint64) {
	if len(flags) == 0 {
		return
	}
	if len(flags) != len(targets) {
		panic("shm: flags/targets length mismatch")
	}
	sys := flags[0].sys
	type pf struct {
		f *Flag
		v uint64
	}
	pending := make([]pf, len(flags))
	for i := range flags {
		pending[i] = pf{flags[i], targets[i]}
	}
	for {
		lines := make([]*mem.Line, len(pending))
		for i, x := range pending {
			lines[i] = x.f.line
		}
		sys.ReadBatch(p, core, lines)
		var still []pf
		for _, x := range pending {
			if x.f.val < x.v {
				still = append(still, x)
			}
		}
		if len(still) == 0 {
			return
		}
		pending = still
		// Arm a waiter on every lagging line under one suspension; the
		// first write wakes us, the rest become stale no-ops.
		for _, x := range pending {
			x.f.line.AddWaiter(p)
		}
		p.Suspend(fmt.Sprintf("wait %d flags (first: %s >= %d)", len(pending), pending[0].f.Name, pending[0].v))
	}
}

// AtomicFlag is a fetch-add-updated counter, as used by OpenMPI's sm
// component. Any core may update it; every update is an atomic RMW that
// serializes at the line (the paper's Fig. 4 pathology).
type AtomicFlag struct {
	Name string

	sys  *mem.System
	line *mem.Line
	val  uint64
}

// NewAtomicFlag allocates an atomic counter on its own line homed at core.
func NewAtomicFlag(sys *mem.System, name string, home int) *AtomicFlag {
	return &AtomicFlag{Name: name, sys: sys, line: sys.NewLine(home)}
}

// FetchAdd atomically adds d and returns the previous value.
func (f *AtomicFlag) FetchAdd(p *sim.Proc, core int, d uint64) uint64 {
	f.line.FetchAdd(p, core)
	old := f.val
	f.val += d
	return old
}

// Read returns the current value, charging for the line access.
func (f *AtomicFlag) Read(p *sim.Proc, core int) uint64 {
	f.line.Read(p, core)
	return f.val
}

// Peek returns the value without charging.
func (f *AtomicFlag) Peek() uint64 { return f.val }

// WaitGE blocks until the counter reaches v.
func (f *AtomicFlag) WaitGE(p *sim.Proc, core int, v uint64) uint64 {
	for {
		got := f.Read(p, core)
		if got >= v {
			return got
		}
		f.line.AddWaiter(p)
		p.Suspend(fmt.Sprintf("wait atomic %s >= %d (have %d)", f.Name, v, f.val))
	}
}
