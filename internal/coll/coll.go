// Package coll is the component registry: it maps the evaluation's
// component names (xhc-tree, xhc-flat, tuned, ucc, sm, smhc-flat,
// smhc-tree, xbrc) to constructed instances over a World, the way
// OpenMPI's MCA selects a coll component at runtime.
package coll

import (
	"fmt"
	"sort"

	"xhc/internal/baselines"
	"xhc/internal/core"
	"xhc/internal/env"
)

// Component is re-exported from baselines (core.Comm satisfies it too).
type Component = baselines.Component

// Builder constructs a component over a world.
type Builder func(w *env.World) (Component, error)

var registry = map[string]Builder{
	"xhc-tree": func(w *env.World) (Component, error) {
		return core.New(w, core.DefaultConfig())
	},
	"xhc-flat": func(w *env.World) (Component, error) {
		return core.New(w, core.FlatConfig())
	},
	"tuned": func(w *env.World) (Component, error) {
		return baselines.NewTuned(w, baselines.DefaultTunedConfig()), nil
	},
	"ucc": func(w *env.World) (Component, error) {
		return baselines.NewUCC(w, baselines.DefaultUCCConfig()), nil
	},
	"sm": func(w *env.World) (Component, error) {
		return baselines.NewSM(w, baselines.DefaultSMConfig()), nil
	},
	"smhc-flat": func(w *env.World) (Component, error) {
		cfg := baselines.DefaultSMHCConfig()
		cfg.Tree = false
		return baselines.NewSMHC(w, cfg)
	},
	"smhc-tree": func(w *env.World) (Component, error) {
		return baselines.NewSMHC(w, baselines.DefaultSMHCConfig())
	},
	"xbrc": func(w *env.World) (Component, error) {
		return baselines.NewXBRC(w, baselines.DefaultXBRCConfig()), nil
	},
}

// New builds the named component over w.
func New(name string, w *env.World) (Component, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("coll: unknown component %q (have %v)", name, Names())
	}
	return b(w)
}

// MustNew panics on error.
func MustNew(name string, w *env.World) Component {
	c, err := New(name, w)
	if err != nil {
		panic(err)
	}
	return c
}

// Names lists the registered component names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Register adds (or overrides) a component builder; tests and ablation
// benches use it to install custom configurations.
func Register(name string, b Builder) { registry[name] = b }
