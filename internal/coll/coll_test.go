package coll

import (
	"bytes"
	"fmt"
	"testing"

	"xhc/internal/env"
	"xhc/internal/mem"
	"xhc/internal/topo"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{"sm", "smhc-flat", "smhc-tree", "tuned", "ucc", "xbrc", "xhc-flat", "xhc-tree"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestEveryComponentBuildsAndBroadcasts(t *testing.T) {
	top := topo.Epyc1P()
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w := env.NewWorld(top, top.MustMap(topo.MapCore, 16))
			c, err := New(name, w)
			if err != nil {
				t.Fatal(err)
			}
			bufs := make([]*mem.Buffer, 16)
			for r := range bufs {
				bufs[r] = w.NewBufferAt(fmt.Sprintf("b%d", r), r, 2048)
			}
			for i := range bufs[0].Data {
				bufs[0].Data[i] = byte(i * 3)
			}
			if err := w.Run(func(p *env.Proc) {
				c.Bcast(p, bufs[p.Rank], 0, 2048, 0)
			}); err != nil {
				t.Fatal(err)
			}
			for r := range bufs {
				if !bytes.Equal(bufs[r].Data, bufs[0].Data) {
					t.Fatalf("rank %d wrong data", r)
				}
			}
		})
	}
}

func TestUnknownComponent(t *testing.T) {
	top := topo.Epyc1P()
	w := env.NewWorld(top, top.MustMap(topo.MapCore, 4))
	if _, err := New("nope", w); err == nil {
		t.Error("unknown name accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic")
		}
	}()
	MustNew("nope", w)
}

func TestRegisterOverride(t *testing.T) {
	top := topo.Epyc1P()
	w := env.NewWorld(top, top.MustMap(topo.MapCore, 4))
	called := false
	t.Cleanup(func() { delete(registry, "custom-test") })
	Register("custom-test", func(w *env.World) (Component, error) {
		called = true
		return New("xhc-tree", w)
	})
	if _, err := New("custom-test", w); err != nil || !called {
		t.Errorf("custom builder not used: %v", err)
	}
}
