package xhc_test

import (
	"bytes"
	"fmt"
	"testing"

	"xhc"
)

// TestPublicAPISurface exercises the root package the way a downstream
// user would: build a platform, a world, a component, run a collective.
func TestPublicAPISurface(t *testing.T) {
	if len(xhc.Platforms()) != 3 {
		t.Fatalf("platforms = %d", len(xhc.Platforms()))
	}
	if xhc.PlatformByName("Epyc-2P") == nil || xhc.PlatformByName("nope") != nil {
		t.Error("PlatformByName broken")
	}
	if len(xhc.ComponentNames()) < 8 {
		t.Errorf("components = %v", xhc.ComponentNames())
	}

	top := xhc.Epyc1P()
	w, err := xhc.NewWorld(top, xhc.MapCore, 8)
	if err != nil {
		t.Fatal(err)
	}
	comm, err := xhc.NewXHC(w, xhc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bufs := make([]*xhc.Buffer, 8)
	for r := range bufs {
		bufs[r] = w.NewBufferAt(fmt.Sprintf("b%d", r), r, 1024)
	}
	for i := range bufs[0].Data {
		bufs[0].Data[i] = byte(i)
	}
	if err := w.Run(func(p *xhc.Proc) {
		comm.Bcast(p, bufs[p.Rank], 0, 1024, 0)
	}); err != nil {
		t.Fatal(err)
	}
	for r := range bufs {
		if !bytes.Equal(bufs[r].Data, bufs[0].Data) {
			t.Fatalf("rank %d wrong data", r)
		}
	}
}

func TestPublicAllreduceViaComponent(t *testing.T) {
	top := xhc.Epyc1P()
	w, err := xhc.NewWorld(top, xhc.MapCore, 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := xhc.NewComponent("xhc-tree", w)
	if err != nil {
		t.Fatal(err)
	}
	sb := make([]*xhc.Buffer, 8)
	rb := make([]*xhc.Buffer, 8)
	for r := range sb {
		sb[r] = w.NewBufferAt("s", r, 64)
		rb[r] = w.NewBufferAt("r", r, 64)
		for i := 0; i < 8; i++ {
			sb[r].Data[i*8] = byte(1) // int64 little-endian value 1
		}
	}
	if err := w.Run(func(p *xhc.Proc) {
		c.Allreduce(p, sb[p.Rank], rb[p.Rank], 64, xhc.Int64, xhc.Sum)
	}); err != nil {
		t.Fatal(err)
	}
	if rb[3].Data[0] != 8 {
		t.Errorf("allreduce sum = %d, want 8", rb[3].Data[0])
	}
}

func TestPublicMicroBench(t *testing.T) {
	b := xhc.MicroBench{Topo: xhc.Epyc1P(), NRanks: 8, Component: "xhc-tree", Warmup: 1, Iters: 2, Dirty: true}
	rs, err := b.Bcast([]int{4, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].AvgLat <= 0 {
		t.Fatalf("results: %+v", rs)
	}
	if !bytes.Contains([]byte(xhc.BenchReport("t", rs)), []byte("Size")) {
		t.Error("report missing header")
	}
}

func TestPublicApps(t *testing.T) {
	cfg := xhc.DefaultMiniAMR(xhc.AppConfig{Topo: xhc.Epyc1P(), NRanks: 8, Component: "xhc-tree"})
	cfg.Steps = 4
	res, err := xhc.RunMiniAMR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total <= 0 {
		t.Error("zero total")
	}
}

func TestPublicExperimentsRegistry(t *testing.T) {
	if len(xhc.Experiments()) < 14 {
		t.Errorf("experiments = %d", len(xhc.Experiments()))
	}
	if _, ok := xhc.ExperimentByID("fig8"); !ok {
		t.Error("fig8 missing")
	}
}

func TestPublicGoComm(t *testing.T) {
	comm := xhc.MustNewGoComm(4, xhc.DefaultGoConfig())
	bufs := make([][]byte, 4)
	for r := range bufs {
		bufs[r] = make([]byte, 128)
	}
	bufs[0][5] = 99
	done := make(chan struct{})
	for r := 0; r < 4; r++ {
		go func(rank int) {
			comm.Bcast(rank, bufs[rank], 0)
			done <- struct{}{}
		}(r)
	}
	for r := 0; r < 4; r++ {
		<-done
	}
	for r := range bufs {
		if bufs[r][5] != 99 {
			t.Fatalf("participant %d missing data", r)
		}
	}
}
