// Command xhcverify explores many distinct schedules of the XHC protocols
// under fault injection, checking protocol invariants (single-writer
// discipline, data correctness, termination, bounded control memory) and
// cross-checking the simulated communicator against a registry baseline and
// the real-concurrency gxhc backend on every run.
//
// With -cluster the sweep (and -replay) runs the multi-node cases instead:
// randomized cluster shapes on the sharded engine, every run executed at
// workers=1 and workers=GOMAXPROCS with fingerprints compared.
//
// Examples:
//
//	xhcverify -quick                      # tier-1 gate: sweep + mutation self-test
//	xhcverify -configs 50 -schedules 32   # a longer hunt
//	xhcverify -cluster -quick             # multi-node sweep + determinism gate
//	xhcverify -replay 0x1d35be3e7a2e4c5a:0x00f3a9c2b1d40e77
//	xhcverify -selftest                   # mutation self-test only
//	xhcverify -configs 50 -telemetry :8080 -flightdir /tmp/dumps
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"xhc/internal/obs"
	"xhc/internal/verify"
)

func main() {
	quick := flag.Bool("quick", false, "default sweep (20 configs x 12 schedules) plus the mutation self-test; fails if fewer than 200 distinct schedules are explored")
	configs := flag.Int("configs", 0, "number of randomized configurations (0 = default 20)")
	schedules := flag.Int("schedules", 0, "schedules per configuration (0 = default 12)")
	seed := flag.Uint64("seed", 0, "sweep seed (varies the whole sweep)")
	replay := flag.String("replay", "", "replay one failing run: cfgseed:schedseed (hex, as printed on failure)")
	cluster := flag.Bool("cluster", false, "sweep/replay the multi-node cluster cases (sharded engine + fabric) instead of the single-node ones")
	selftest := flag.Bool("selftest", false, "run only the mutation self-test")
	verbose := flag.Bool("v", false, "per-configuration progress")
	metrics := flag.Bool("metrics", false, "print the unified observability snapshot (latency quantiles, fault counters) on exit")
	telemetry := flag.String("telemetry", "", "serve live telemetry (Prometheus /metrics, /flight dumps, pprof) on this address during the run")
	flightDir := flag.String("flightdir", "", "write every flight-recorder dump as JSON into this directory")
	flag.Parse()

	// Every run is observed: latencies feed the registry's histograms,
	// injected faults its counters, and failures/stragglers dump the flight
	// recorder with the run's replay token attached.
	reg := obs.NewRegistry(false)
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		n := 0
		reg.SetDumpSink(func(d *obs.FlightDump) {
			n++
			path := filepath.Join(*flightDir, fmt.Sprintf("flight-%03d-%s.json", n, d.Kind))
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			werr := d.WriteJSON(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintln(os.Stderr, werr)
				return
			}
			fmt.Fprintf(os.Stderr, "flight dump: %s (%s)\n", path, d.Reason)
		})
	}
	if *telemetry != "" {
		addr, err := obs.StartTelemetry(reg, *telemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics\n", addr)
	}

	var code int
	switch {
	case *replay != "" && *cluster:
		code = doClusterReplay(*replay)
	case *replay != "":
		code = doReplay(*replay, reg)
	case *selftest:
		code = doSelfTest()
	case *cluster:
		code = doClusterSweep(*configs, *schedules, *seed, *quick, *verbose)
	default:
		code = doSweep(*configs, *schedules, *seed, *quick, *verbose, reg)
		if *quick && code == 0 {
			code = doSelfTest()
		}
	}
	if *metrics {
		fmt.Print(reg.Snapshot().String())
	}
	os.Exit(code)
}

func doSweep(configs, schedules int, seed uint64, quick, verbose bool, reg *obs.Registry) int {
	o := verify.Options{Configs: configs, Schedules: schedules, Seed: seed, Obs: reg}
	if verbose {
		o.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	start := time.Now()
	sum := verify.Explore(o)
	fmt.Printf("explored %d runs over %d configurations: %d distinct schedules, %d with concurrent communicators, in %v\n",
		sum.Runs, sum.Configs, sum.DistinctSchedules, sum.ConcRuns, time.Since(start).Round(time.Millisecond))
	for _, f := range sum.Failures {
		fmt.Printf("FAIL %s\n  schedule %s\n  %s\n  replay: xhcverify -replay %#016x:%#016x\n",
			f.Case, f.Sched, f.Err, f.CfgSeed, f.SchedSeed)
	}
	if len(sum.Failures) > 0 {
		fmt.Printf("%d failing run(s)\n", len(sum.Failures))
		return 1
	}
	if quick && sum.DistinctSchedules < 200 {
		fmt.Printf("quick gate: only %d distinct schedules (< 200)\n", sum.DistinctSchedules)
		return 1
	}
	if quick && sum.ConcRuns < 12 {
		// The concurrency draw adds overlapping-communicator phases (>= 2
		// comms, >= 2 requests in flight per member) to a third of the
		// seeds; a sweep that explored fewer than one configuration's worth
		// never exercised concurrent collectives.
		fmt.Printf("quick gate: only %d concurrent-communicator runs (< 12)\n", sum.ConcRuns)
		return 1
	}
	fmt.Println("all runs passed")
	return 0
}

// doClusterSweep explores the multi-node cases. Every run already
// self-checks determinism (workers=1 vs parallel fingerprints), so the
// quick gate only adds a distinct-schedule floor.
func doClusterSweep(configs, schedules int, seed uint64, quick, verbose bool) int {
	o := verify.Options{Configs: configs, Schedules: schedules, Seed: seed}
	if verbose {
		o.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	start := time.Now()
	sum := verify.ExploreCluster(o)
	fmt.Printf("explored %d cluster runs over %d configurations: %d distinct schedules in %v\n",
		sum.Runs, sum.Configs, sum.DistinctSchedules, time.Since(start).Round(time.Millisecond))
	for _, f := range sum.Failures {
		fmt.Printf("FAIL %s\n  schedule %s\n  %s\n  replay: xhcverify -cluster -replay %#016x:%#016x\n",
			f.Case, f.Sched, f.Err, f.CfgSeed, f.SchedSeed)
	}
	if len(sum.Failures) > 0 {
		fmt.Printf("%d failing run(s)\n", len(sum.Failures))
		return 1
	}
	if quick && sum.DistinctSchedules < 20 {
		fmt.Printf("quick gate: only %d distinct cluster schedules (< 20)\n", sum.DistinctSchedules)
		return 1
	}
	fmt.Println("all cluster runs passed")
	return 0
}

func doClusterReplay(arg string) int {
	cfg, sched, err := parseReplay(arg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	c, s := verify.DeriveClusterCase(cfg), verify.DeriveSchedule(sched)
	fmt.Printf("replaying %s\n  schedule %s\n", c, s)
	hash, rerr := verify.RunClusterCase(c, s)
	fmt.Printf("schedule fingerprint %#016x\n", hash)
	if rerr != nil {
		fmt.Printf("FAIL %s\n", rerr)
		return 1
	}
	fmt.Println("replay passed")
	return 0
}

func doSelfTest() int {
	bad := 0
	for _, o := range verify.RunMutationSelfTest(true) {
		status := "ok"
		if !o.OK {
			status = "MISSED"
			if !o.Mutant {
				status = "FAIL"
			}
			bad++
		}
		fmt.Printf("selftest %-18s %s", o.Name, status)
		if o.Mutant && o.OK {
			fmt.Printf("  (%s)", firstLine(o.Detail))
		}
		fmt.Println()
	}
	if bad > 0 {
		fmt.Printf("mutation self-test: %d problem(s)\n", bad)
		return 1
	}
	fmt.Println("mutation self-test passed: every seeded bug detected")
	return 0
}

func doReplay(arg string, reg *obs.Registry) int {
	cfg, sched, err := parseReplay(arg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	c, s := verify.DeriveCase(cfg), verify.DeriveSchedule(sched)
	fmt.Printf("replaying %s\n  schedule %s\n", c, s)
	hash, rerr := verify.RunCaseObs(c, s, reg)
	fmt.Printf("schedule fingerprint %#016x\n", hash)
	if rerr != nil {
		fmt.Printf("FAIL %s\n", rerr)
		return 1
	}
	fmt.Println("replay passed")
	return 0
}

func parseReplay(arg string) (uint64, uint64, error) {
	parts := strings.SplitN(arg, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -replay %q: want cfgseed:schedseed", arg)
	}
	var seeds [2]uint64
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimPrefix(p, "0x"), 16, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad -replay seed %q: %v", p, err)
		}
		seeds[i] = v
	}
	return seeds[0], seeds[1], nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
