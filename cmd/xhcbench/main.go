// Command xhcbench runs OSU-style collective microbenchmarks on the
// simulated platforms.
//
// Examples:
//
//	xhcbench -platform Epyc-2P -coll bcast -comp xhc-tree
//	xhcbench -platform ARM-N1 -coll allreduce -comp tuned,ucc,xhc-tree -sizes 4,1024,1048576
//	xhcbench -platform Epyc-2P -coll bcast -comp xhc-tree -policy map-numa -root 10
//	xhcbench -platform ARM-N1 -coll allreduce -comp xhc-tree -json cells.json -cpuprofile cpu.prof
//
// A "<N>x<platform>" platform name selects the multi-node cluster
// simulator: N nodes of the platform joined by the simulated fabric, with
// the top hierarchy level running between node leaders. The -workers flag
// sets how many goroutines run the per-node engine shards; the report is
// byte-identical at every setting.
//
//	xhcbench -platform 4xEpyc-1P -coll allreduce -workers 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"xhc/internal/coll"
	"xhc/internal/core"
	"xhc/internal/env"
	"xhc/internal/gxhc"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/obs"
	"xhc/internal/osu"
	"xhc/internal/sim"
	"xhc/internal/stats"
	"xhc/internal/topo"
	"xhc/internal/tune"
)

// cellRecord is one (component, size) measurement in the -json output:
// the simulated latency plus how long the simulator itself took to produce
// it, which is what BENCH_flowsolver.json-style perf comparisons track.
type cellRecord struct {
	Platform   string  `json:"platform"`
	Collective string  `json:"collective"`
	Component  string  `json:"component"`
	Size       int     `json:"size"`
	AvgLatUS   float64 `json:"avg_lat_us"`
	MinLatUS   float64 `json:"min_lat_us"`
	MaxLatUS   float64 `json:"max_lat_us"`
	WallMS     float64 `json:"wall_ms"`
}

func main() {
	backend := flag.String("backend", "sim", "sim (simulated platforms) | gxhc (real goroutine-backed wall clock)")
	platform := flag.String("platform", "Epyc-2P", "Epyc-1P | Epyc-2P | ARM-N1 (sim backend)")
	collective := flag.String("coll", "bcast", "bcast | allreduce | barrier | reduce | allgather | scatter (cluster platforms: comma-separated list of bcast | allreduce | reduce | barrier; gxhc backend also: ibcast-overlap | ibcast-fused)")
	comps := flag.String("comp", "xhc-tree", "comma-separated component list (see -listcomp)")
	sizesArg := flag.String("sizes", "", "comma-separated byte sizes (default: 4B..4MB sweep)")
	nranks := flag.Int("np", 0, "rank count (0 = all cores)")
	policy := flag.String("policy", "map-core", "map-core | map-numa")
	root := flag.Int("root", 0, "broadcast root")
	warmup := flag.Int("warmup", 4, "warmup iterations")
	iterations := flag.Int("iters", 10, "measured iterations")
	stock := flag.Bool("stock", false, "stock OSU behaviour (no buffer dirtying)")
	listComp := flag.Bool("listcomp", false, "list components and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	jsonOut := flag.String("json", "", "also write per-cell results (sim latency + wall-clock) as JSON to this file")
	procsArg := flag.String("procs", "", "gxhc backend: comma-separated GOMAXPROCS settings to sweep (default: current)")
	groupSize := flag.Int("group", 8, "gxhc backend: hierarchy leaf group size")
	chunkBytes := flag.Int("chunk", 64<<10, "gxhc backend: broadcast pipelining chunk bytes")
	workers := flag.Int("workers", 0, "cluster platforms: engine-shard goroutines (0 = GOMAXPROCS, 1 = sequential reference)")
	spin := flag.Bool("spin", false, "gxhc backend: spin-only waiter (no parking)")
	allocGate := flag.Bool("allocgate", false, "gxhc backend: fail unless the steady-state op path is allocation-free at every measured size")
	traceOut := flag.String("trace", "", "write per-rank phase spans as Chrome-trace JSON to this file")
	metrics := flag.Bool("metrics", false, "print the unified observability snapshot on exit")
	telemetry := flag.String("telemetry", "", "serve live telemetry (Prometheus /metrics, /flight dumps, pprof) on this address during the run")
	tunedPath := flag.String("tuned", "", "xhctune plan file backing the xhc-tuned component (sim backend)")
	flag.Parse()

	var tuned *tune.File
	if *tunedPath != "" {
		f, err := tune.Load(*tunedPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		tuned = &f
	}

	var reg *obs.Registry
	if *traceOut != "" || *metrics || *telemetry != "" {
		reg = obs.NewRegistry(*traceOut != "")
		env.ObserveWorlds(reg)
	}
	if *telemetry != "" {
		addr, err := obs.StartTelemetry(reg, *telemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Report on stderr: stdout is the benchmark report and must stay
		// byte-identical with telemetry off.
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics\n", addr)
	}

	if *listComp {
		fmt.Println(strings.Join(coll.Names(), "\n"))
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	sizes := osu.DefaultSizes()
	if *sizesArg != "" {
		sizes = nil
		for _, s := range strings.Split(*sizesArg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad size %q\n", s)
				os.Exit(2)
			}
			sizes = append(sizes, n)
		}
	}

	if *collective == "barrier" {
		sizes = []int{0} // no payload; one row
	}

	var records []cellRecord
	if *backend == "gxhc" {
		records = runGxhc(gxhcOpts{
			coll: *collective, sizes: sizes, nranks: *nranks,
			procs: *procsArg, group: *groupSize, chunk: *chunkBytes,
			spin: *spin, allocGate: *allocGate,
			warmup: *warmup, iters: *iterations, dirty: !*stock, root: *root,
		}, reg)
	} else if cl := topo.ClusterByName(*platform); cl != nil {
		records = runCluster(cl, clusterOpts{
			coll: *collective, sizes: sizes, nranks: *nranks, root: *root,
			warmup: *warmup, iters: *iterations, dirty: !*stock,
			workers: *workers,
		})
	} else {
		records = runSim(simOpts{
			platform: *platform, coll: *collective, comps: *comps,
			sizes: sizes, nranks: *nranks, policy: *policy, root: *root,
			warmup: *warmup, iters: *iterations, dirty: !*stock,
			tuned: tuned,
		})
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if reg != nil {
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err == nil {
				err = reg.WriteChromeTrace(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *traceOut)
		}
		if *metrics {
			fmt.Print(reg.Snapshot().String())
		}
	}
}

type simOpts struct {
	platform, coll, comps, policy string
	sizes                         []int
	nranks, root, warmup, iters   int
	dirty                         bool
	// tuned backs the "xhc-tuned" component: each measured size resolves
	// its plan through the file's size classes. Requesting xhc-tuned
	// without a plan file (or with a cell the file does not cover) is an
	// error — a tuned column silently falling back to defaults would
	// fabricate wins.
	tuned *tune.File
}

// runSim is the original simulated-platform sweep: one column per
// component, one row per measured size.
func runSim(o simOpts) []cellRecord {
	top := topo.ByName(o.platform)
	if top == nil {
		fmt.Fprintf(os.Stderr, "unknown platform %q\n", o.platform)
		os.Exit(2)
	}
	names := strings.Split(o.comps, ",")
	all := map[string]map[int]float64{}
	var records []cellRecord
	// rowSizes tracks the sizes actually measured, in sweep order: allreduce
	// normalizes sizes to whole elements, so the report must key its rows on
	// the returned sizes, not the requested ones.
	var rowSizes []int
	seenSize := map[int]bool{}
	for _, name := range names {
		b := osu.Bench{
			Topo: top, NRanks: o.nranks, Component: strings.TrimSpace(name),
			Policy: topo.MapPolicy(o.policy), Root: o.root,
			Warmup: o.warmup, Iters: o.iters, Dirty: o.dirty,
		}
		all[name] = map[int]float64{}
		for _, size := range o.sizes {
			if name == "xhc-tuned" {
				if o.tuned == nil {
					fmt.Fprintln(os.Stderr, "component xhc-tuned needs -tuned <planfile>")
					os.Exit(2)
				}
				cp, ok := o.tuned.Lookup(o.coll, size)
				if !ok {
					fmt.Fprintf(os.Stderr, "plan file %s has no cell covering %s size %d\n",
						o.tuned.Platform, o.coll, size)
					os.Exit(2)
				}
				b.Custom = cp.Plan.Builder()
			}
			start := time.Now()
			var rs []osu.Result
			var err error
			switch o.coll {
			case "bcast":
				rs, err = b.Bcast([]int{size})
			case "allreduce":
				rs, err = b.Allreduce([]int{size})
			case "barrier":
				rs, err = b.Barrier()
			case "reduce":
				rs, err = b.Reduce([]int{size})
			case "allgather":
				rs, err = b.Allgather([]int{size})
			case "scatter":
				rs, err = b.Scatter([]int{size})
			default:
				fmt.Fprintf(os.Stderr, "unknown collective %q\n", o.coll)
				os.Exit(2)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if len(rs) == 0 {
				continue
			}
			wall := time.Since(start)
			r := rs[0]
			all[name][r.Size] = r.AvgLat
			if !seenSize[r.Size] {
				seenSize[r.Size] = true
				rowSizes = append(rowSizes, r.Size)
			}
			records = append(records, cellRecord{
				Platform: top.Name, Collective: o.coll, Component: name,
				Size: r.Size, AvgLatUS: r.AvgLat, MinLatUS: r.MinLat, MaxLatUS: r.MaxLat,
				WallMS: float64(wall.Microseconds()) / 1e3,
			})
		}
	}

	np := o.nranks
	if np == 0 {
		np = top.NCores
	}
	fmt.Printf("# %s on %s, %d ranks, %s, root %d (latency us, mean of %d iters)\n",
		o.coll, top.Name, np, o.policy, o.root, o.iters)
	t := &stats.Table{Header: append([]string{"size"}, names...)}
	for _, n := range rowSizes {
		row := []string{stats.SizeLabel(n)}
		for _, name := range names {
			row = append(row, fmt.Sprintf("%.2f", all[name][n]))
		}
		t.Add(row...)
	}
	fmt.Print(t.String())
	return records
}

type clusterOpts struct {
	coll                        string
	sizes                       []int
	nranks, root, warmup, iters int
	workers                     int
	dirty                       bool
}

// runCluster sweeps the multi-node simulator: one fresh ClusterWorld per
// measured size, an OSU-style warmup+measured loop on every rank, and
// latencies in simulated microseconds averaged over all ranks and iters.
// Unlike the other backends -coll accepts a comma-separated list here, so
// one invocation can emit the whole BENCH_cluster.json sweep. Latencies
// are virtual time, so every cell is bit-reproducible: the committed
// baseline diffs exactly against a fresh run, and the per-node engine
// shards running on -workers goroutines cannot change a digit
// (scripts/check.sh gates both properties).
func runCluster(cl *topo.Cluster, o clusterOpts) []cellRecord {
	perNode := o.nranks
	if perNode == 0 {
		perNode = cl.Node.NCores
	} else if perNode%cl.Nodes != 0 {
		fmt.Fprintf(os.Stderr, "np %d does not divide evenly over %d nodes\n", o.nranks, cl.Nodes)
		os.Exit(2)
	} else {
		perNode /= cl.Nodes
	}
	if perNode > cl.Node.NCores {
		fmt.Fprintf(os.Stderr, "np %d needs %d ranks per node but %s has %d cores\n",
			o.nranks, perNode, cl.Node.Name, cl.Node.NCores)
		os.Exit(2)
	}

	colls := strings.Split(o.coll, ",")
	for i, c := range colls {
		colls[i] = strings.TrimSpace(c)
		switch colls[i] {
		case "bcast", "allreduce", "reduce", "barrier":
		default:
			fmt.Fprintf(os.Stderr, "cluster backend: unknown collective %q (bcast | allreduce | reduce | barrier)\n", colls[i])
			os.Exit(2)
		}
	}

	var records []cellRecord
	for ci, coll := range colls {
		sizes := o.sizes
		switch coll {
		case "barrier":
			sizes = []int{0} // no payload; one row
		case "allreduce", "reduce":
			// Reductions operate on whole float64 elements; normalize like
			// osu does so the report rows match the measured sizes.
			norm := make([]int, 0, len(sizes))
			seen := map[int]bool{}
			for _, n := range sizes {
				if n >= 8 {
					n -= n % 8
				}
				if n < 0 || seen[n] {
					continue
				}
				seen[n] = true
				norm = append(norm, n)
			}
			sizes = norm
		}

		var rowSizes []int
		col := map[int]float64{}
		for _, size := range sizes {
			start := time.Now()
			m, err := cl.Node.Map(topo.MapCore, perNode)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			cw := env.NewClusterWorldDefault(cl, m)
			cw.Workers = o.workers
			cc, err := core.NewCluster(cw, core.DefaultConfig())
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			dt := mpi.Float64
			if size < 8 {
				dt = mpi.Byte
			}
			// Shards run in parallel: every rank records into its own slot.
			lats := make([][]float64, cw.N)
			coll := coll
			runErr := cw.Run(func(p *env.Proc, node int) {
				g := cw.GlobalRank(node, p.Rank)
				alloc := size
				if alloc == 0 {
					alloc = 8
				}
				sbuf := p.NewBuffer(fmt.Sprintf("bench.s%d", g), alloc)
				rbuf := p.NewBuffer(fmt.Sprintf("bench.r%d", g), alloc)
				for it := 0; it < o.warmup+o.iters; it++ {
					if o.dirty && size > 0 && (coll != "bcast" || g == o.root) {
						p.Dirty(sbuf)
					}
					cw.HarnessBarrier(p, node)
					t0 := p.Now()
					switch coll {
					case "bcast":
						cc.Bcast(p, node, sbuf, 0, size, o.root)
					case "allreduce":
						cc.Allreduce(p, node, sbuf, rbuf, size, dt, mpi.Sum)
					case "reduce":
						cc.Reduce(p, node, sbuf, rbuf, size, dt, mpi.Sum, o.root)
					case "barrier":
						cc.Barrier(p, node)
					}
					d := p.Now() - t0
					if it >= o.warmup {
						lats[g] = append(lats[g], sim.Micros(d))
					}
					cw.HarnessBarrier(p, node)
				}
			})
			if runErr != nil {
				fmt.Fprintln(os.Stderr, runErr)
				os.Exit(1)
			}
			var all []float64
			for _, l := range lats {
				all = append(all, l...)
			}
			if len(all) == 0 {
				continue
			}
			wall := time.Since(start)
			col[size] = stats.Mean(all)
			rowSizes = append(rowSizes, size)
			records = append(records, cellRecord{
				Platform: cl.Name, Collective: coll, Component: "xhc-cluster",
				Size: size, AvgLatUS: stats.Mean(all), MinLatUS: stats.Min(all), MaxLatUS: stats.Max(all),
				WallMS: float64(wall.Microseconds()) / 1e3,
			})
		}

		if ci > 0 {
			fmt.Println()
		}
		fmt.Printf("# %s on %s (%d nodes x %d ranks = %d), root %d (latency us, mean of %d iters)\n",
			coll, cl.Name, cl.Nodes, perNode, cl.Nodes*perNode, o.root, o.iters)
		t := &stats.Table{Header: []string{"size", "xhc-cluster"}}
		for _, n := range rowSizes {
			t.Add(stats.SizeLabel(n), fmt.Sprintf("%.2f", col[n]))
		}
		fmt.Print(t.String())
	}
	return records
}

type gxhcOpts struct {
	coll                   string
	sizes                  []int
	procs                  string
	nranks, group, chunk   int
	root, warmup, iters    int
	spin, allocGate, dirty bool
}

// runGxhc measures the real goroutine-backed gxhc communicator on the wall
// clock, sweeping GOMAXPROCS settings: one column per setting, one row per
// measured size. Like the cluster backend, -coll accepts a comma-separated
// list here, so one invocation can emit e.g. both non-blocking overlap
// cells (ibcast-overlap, ibcast-fused) into one cells file. The -json
// cells key the GOMAXPROCS setting into the platform field ("gxhc-P<n>")
// so xhcstat diffs stay per-setting.
func runGxhc(o gxhcOpts, reg *obs.Registry) []cellRecord {
	np := o.nranks
	if np == 0 {
		np = runtime.NumCPU()
	}
	var procs []int
	if o.procs == "" {
		procs = []int{runtime.GOMAXPROCS(0)}
	} else {
		for _, s := range strings.Split(o.procs, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || p <= 0 {
				fmt.Fprintf(os.Stderr, "bad -procs entry %q\n", s)
				os.Exit(2)
			}
			procs = append(procs, p)
		}
	}
	component := "gxhc"
	if o.spin {
		component = "gxhc-spin"
	}

	var records []cellRecord
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for ci, coll := range strings.Split(o.coll, ",") {
		coll = strings.TrimSpace(coll)
		spec := gxhc.BenchSpec{
			Ranks: np,
			Cfg:   gxhc.Config{GroupSize: o.group, ChunkBytes: o.chunk, Spin: o.spin},
			Coll:  coll, Warmup: o.warmup, Iters: o.iters, Dirty: o.dirty, Root: o.root,
		}
		var worlds []*obs.World
		if reg != nil {
			spec.Observe = func(c *gxhc.Comm) {
				wo := reg.NewWorld("gxhc", np, obs.WallTicksPerUS, obs.WallClock())
				wo.Rec.Backend = component
				c.AttachRecorder(wo.Rec)
				worlds = append(worlds, wo)
			}
		}

		colLabels := make([]string, len(procs))
		cols := make([]map[int]float64, len(procs))
		var rowSizes []int
		seenSize := map[int]bool{}
		for pi, p := range procs {
			runtime.GOMAXPROCS(p)
			colLabels[pi] = fmt.Sprintf("P%d", p)
			cols[pi] = map[int]float64{}
			for _, size := range o.sizes {
				start := time.Now()
				rs, err := spec.Run([]int{size})
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if len(rs) == 0 {
					continue
				}
				wall := time.Since(start)
				r := rs[0]
				cols[pi][r.Size] = r.AvgLat
				if !seenSize[r.Size] {
					seenSize[r.Size] = true
					rowSizes = append(rowSizes, r.Size)
				}
				records = append(records, cellRecord{
					Platform: fmt.Sprintf("gxhc-P%d", p), Collective: coll, Component: component,
					Size: r.Size, AvgLatUS: r.AvgLat, MinLatUS: r.MinLat, MaxLatUS: r.MaxLat,
					WallMS: float64(wall.Microseconds()) / 1e3,
				})
			}
			if o.allocGate {
				for _, size := range rowSizes {
					got, err := spec.SteadyStateAllocs(size)
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					if got != 0 {
						fmt.Fprintf(os.Stderr, "allocgate: %s P%d size %d: %.4f allocs/op on the steady-state path (want 0)\n",
							coll, p, size, got)
						os.Exit(1)
					}
					fmt.Fprintf(os.Stderr, "allocgate: %s P%d size %d: 0 allocs/op\n", coll, p, size)
				}
			}
		}
		runtime.GOMAXPROCS(prev)
		for _, wo := range worlds {
			wo.Finish(mem.Stats{}, sim.EngineStats{})
		}

		waiter := "park"
		if o.spin {
			waiter = "spin"
		}
		if ci > 0 {
			fmt.Println()
		}
		fmt.Printf("# %s on gxhc (wall clock), %d ranks, group %d, waiter=%s, root %d (latency us, mean of %d iters)\n",
			coll, np, o.group, waiter, o.root, o.iters)
		t := &stats.Table{Header: append([]string{"size"}, colLabels...)}
		for _, n := range rowSizes {
			row := []string{stats.SizeLabel(n)}
			for pi := range procs {
				row = append(row, fmt.Sprintf("%.2f", cols[pi][n]))
			}
			t.Add(row...)
		}
		fmt.Print(t.String())
	}
	return records
}
