// Command xhcbench runs OSU-style collective microbenchmarks on the
// simulated platforms.
//
// Examples:
//
//	xhcbench -platform Epyc-2P -coll bcast -comp xhc-tree
//	xhcbench -platform ARM-N1 -coll allreduce -comp tuned,ucc,xhc-tree -sizes 4,1024,1048576
//	xhcbench -platform Epyc-2P -coll bcast -comp xhc-tree -policy map-numa -root 10
//	xhcbench -platform ARM-N1 -coll allreduce -comp xhc-tree -json cells.json -cpuprofile cpu.prof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"xhc/internal/coll"
	"xhc/internal/env"
	"xhc/internal/obs"
	"xhc/internal/osu"
	"xhc/internal/stats"
	"xhc/internal/topo"
)

// cellRecord is one (component, size) measurement in the -json output:
// the simulated latency plus how long the simulator itself took to produce
// it, which is what BENCH_flowsolver.json-style perf comparisons track.
type cellRecord struct {
	Platform   string  `json:"platform"`
	Collective string  `json:"collective"`
	Component  string  `json:"component"`
	Size       int     `json:"size"`
	AvgLatUS   float64 `json:"avg_lat_us"`
	MinLatUS   float64 `json:"min_lat_us"`
	MaxLatUS   float64 `json:"max_lat_us"`
	WallMS     float64 `json:"wall_ms"`
}

func main() {
	platform := flag.String("platform", "Epyc-2P", "Epyc-1P | Epyc-2P | ARM-N1")
	collective := flag.String("coll", "bcast", "bcast | allreduce | barrier | reduce | allgather | scatter")
	comps := flag.String("comp", "xhc-tree", "comma-separated component list (see -listcomp)")
	sizesArg := flag.String("sizes", "", "comma-separated byte sizes (default: 4B..4MB sweep)")
	nranks := flag.Int("np", 0, "rank count (0 = all cores)")
	policy := flag.String("policy", "map-core", "map-core | map-numa")
	root := flag.Int("root", 0, "broadcast root")
	warmup := flag.Int("warmup", 4, "warmup iterations")
	iterations := flag.Int("iters", 10, "measured iterations")
	stock := flag.Bool("stock", false, "stock OSU behaviour (no buffer dirtying)")
	listComp := flag.Bool("listcomp", false, "list components and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	jsonOut := flag.String("json", "", "also write per-cell results (sim latency + wall-clock) as JSON to this file")
	traceOut := flag.String("trace", "", "write per-rank phase spans as Chrome-trace JSON to this file")
	metrics := flag.Bool("metrics", false, "print the unified observability snapshot on exit")
	telemetry := flag.String("telemetry", "", "serve live telemetry (Prometheus /metrics, /flight dumps, pprof) on this address during the run")
	flag.Parse()

	var reg *obs.Registry
	if *traceOut != "" || *metrics || *telemetry != "" {
		reg = obs.NewRegistry(*traceOut != "")
		env.ObserveWorlds(reg)
	}
	if *telemetry != "" {
		addr, err := obs.StartTelemetry(reg, *telemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Report on stderr: stdout is the benchmark report and must stay
		// byte-identical with telemetry off.
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics\n", addr)
	}

	if *listComp {
		fmt.Println(strings.Join(coll.Names(), "\n"))
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	top := topo.ByName(*platform)
	if top == nil {
		fmt.Fprintf(os.Stderr, "unknown platform %q\n", *platform)
		os.Exit(2)
	}
	sizes := osu.DefaultSizes()
	if *sizesArg != "" {
		sizes = nil
		for _, s := range strings.Split(*sizesArg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad size %q\n", s)
				os.Exit(2)
			}
			sizes = append(sizes, n)
		}
	}

	if *collective == "barrier" {
		sizes = []int{0} // no payload; one row
	}

	names := strings.Split(*comps, ",")
	all := map[string]map[int]float64{}
	var records []cellRecord
	// rowSizes tracks the sizes actually measured, in sweep order: allreduce
	// normalizes sizes to whole elements, so the report must key its rows on
	// the returned sizes, not the requested ones.
	var rowSizes []int
	seenSize := map[int]bool{}
	for _, name := range names {
		b := osu.Bench{
			Topo: top, NRanks: *nranks, Component: strings.TrimSpace(name),
			Policy: topo.MapPolicy(*policy), Root: *root,
			Warmup: *warmup, Iters: *iterations, Dirty: !*stock,
		}
		all[name] = map[int]float64{}
		for _, size := range sizes {
			start := time.Now()
			var rs []osu.Result
			var err error
			switch *collective {
			case "bcast":
				rs, err = b.Bcast([]int{size})
			case "allreduce":
				rs, err = b.Allreduce([]int{size})
			case "barrier":
				rs, err = b.Barrier()
			case "reduce":
				rs, err = b.Reduce([]int{size})
			case "allgather":
				rs, err = b.Allgather([]int{size})
			case "scatter":
				rs, err = b.Scatter([]int{size})
			default:
				fmt.Fprintf(os.Stderr, "unknown collective %q\n", *collective)
				os.Exit(2)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if len(rs) == 0 {
				continue
			}
			wall := time.Since(start)
			r := rs[0]
			all[name][r.Size] = r.AvgLat
			if !seenSize[r.Size] {
				seenSize[r.Size] = true
				rowSizes = append(rowSizes, r.Size)
			}
			records = append(records, cellRecord{
				Platform: top.Name, Collective: *collective, Component: name,
				Size: r.Size, AvgLatUS: r.AvgLat, MinLatUS: r.MinLat, MaxLatUS: r.MaxLat,
				WallMS: float64(wall.Microseconds()) / 1e3,
			})
		}
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	np := *nranks
	if np == 0 {
		np = top.NCores
	}
	fmt.Printf("# %s on %s, %d ranks, %s, root %d (latency us, mean of %d iters)\n",
		*collective, top.Name, np, *policy, *root, *iterations)
	t := &stats.Table{Header: append([]string{"size"}, names...)}
	for _, n := range rowSizes {
		row := []string{stats.SizeLabel(n)}
		for _, name := range names {
			row = append(row, fmt.Sprintf("%.2f", all[name][n]))
		}
		t.Add(row...)
	}
	fmt.Print(t.String())

	if reg != nil {
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err == nil {
				err = reg.WriteChromeTrace(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *traceOut)
		}
		if *metrics {
			fmt.Print(reg.Snapshot().String())
		}
	}
}
