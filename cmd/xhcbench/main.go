// Command xhcbench runs OSU-style collective microbenchmarks on the
// simulated platforms.
//
// Examples:
//
//	xhcbench -platform Epyc-2P -coll bcast -comp xhc-tree
//	xhcbench -platform ARM-N1 -coll allreduce -comp tuned,ucc,xhc-tree -sizes 4,1024,1048576
//	xhcbench -platform Epyc-2P -coll bcast -comp xhc-tree -policy map-numa -root 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"xhc/internal/coll"
	"xhc/internal/osu"
	"xhc/internal/stats"
	"xhc/internal/topo"
)

func main() {
	platform := flag.String("platform", "Epyc-2P", "Epyc-1P | Epyc-2P | ARM-N1")
	collective := flag.String("coll", "bcast", "bcast | allreduce")
	comps := flag.String("comp", "xhc-tree", "comma-separated component list (see -listcomp)")
	sizesArg := flag.String("sizes", "", "comma-separated byte sizes (default: 4B..4MB sweep)")
	nranks := flag.Int("np", 0, "rank count (0 = all cores)")
	policy := flag.String("policy", "map-core", "map-core | map-numa")
	root := flag.Int("root", 0, "broadcast root")
	warmup := flag.Int("warmup", 4, "warmup iterations")
	iterations := flag.Int("iters", 10, "measured iterations")
	stock := flag.Bool("stock", false, "stock OSU behaviour (no buffer dirtying)")
	listComp := flag.Bool("listcomp", false, "list components and exit")
	flag.Parse()

	if *listComp {
		fmt.Println(strings.Join(coll.Names(), "\n"))
		return
	}

	top := topo.ByName(*platform)
	if top == nil {
		fmt.Fprintf(os.Stderr, "unknown platform %q\n", *platform)
		os.Exit(2)
	}
	sizes := osu.DefaultSizes()
	if *sizesArg != "" {
		sizes = nil
		for _, s := range strings.Split(*sizesArg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad size %q\n", s)
				os.Exit(2)
			}
			sizes = append(sizes, n)
		}
	}

	names := strings.Split(*comps, ",")
	all := map[string]map[int]float64{}
	for _, name := range names {
		b := osu.Bench{
			Topo: top, NRanks: *nranks, Component: strings.TrimSpace(name),
			Policy: topo.MapPolicy(*policy), Root: *root,
			Warmup: *warmup, Iters: *iterations, Dirty: !*stock,
		}
		var rs []osu.Result
		var err error
		switch *collective {
		case "bcast":
			rs, err = b.Bcast(sizes)
		case "allreduce":
			rs, err = b.Allreduce(sizes)
		default:
			fmt.Fprintf(os.Stderr, "unknown collective %q\n", *collective)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		all[name] = map[int]float64{}
		for _, r := range rs {
			all[name][r.Size] = r.AvgLat
		}
	}

	np := *nranks
	if np == 0 {
		np = top.NCores
	}
	fmt.Printf("# %s on %s, %d ranks, %s, root %d (latency us, mean of %d iters)\n",
		*collective, top.Name, np, *policy, *root, *iterations)
	t := &stats.Table{Header: append([]string{"size"}, names...)}
	for _, n := range sizes {
		row := []string{stats.SizeLabel(n)}
		for _, name := range names {
			row = append(row, fmt.Sprintf("%.2f", all[name][n]))
		}
		t.Add(row...)
	}
	fmt.Print(t.String())
}
