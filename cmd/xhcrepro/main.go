// Command xhcrepro regenerates the paper's tables and figures.
//
// Usage:
//
//	xhcrepro [-quick] [-exp id] [-list] [-o file] [-parallel n]
//
// Without -exp it runs every experiment in paper order and prints (or
// writes) a combined report, the data behind EXPERIMENTS.md. Independent
// experiment cells (one simulated world each) run across -parallel worker
// goroutines; the report is byte-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"xhc/internal/env"
	"xhc/internal/exper"
	"xhc/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "trimmed sweeps (seconds instead of minutes)")
	expID := flag.String("exp", "", "run a single experiment (e.g. fig8); empty = all")
	list := flag.Bool("list", false, "list experiment ids and exit")
	out := flag.String("o", "", "write the report to a file instead of stdout")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker goroutines for independent experiment cells (1 = sequential)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceOut := flag.String("trace", "", "write per-rank phase spans as Chrome-trace JSON to this file")
	metrics := flag.Bool("metrics", false, "print the unified observability snapshot on exit")
	telemetry := flag.String("telemetry", "", "serve live telemetry (Prometheus /metrics, /flight dumps, pprof) on this address during the run")
	tuned := flag.String("tuned", "", "xhctune plan file for the tune experiment (default: in-memory sweep)")
	flag.Parse()

	// With none of the observability flags set no Observer is installed and
	// every world takes the exact pre-observability construction path:
	// reports stay byte-identical (scripts/check.sh pins this).
	var reg *obs.Registry
	if *traceOut != "" || *metrics || *telemetry != "" {
		reg = obs.NewRegistry(*traceOut != "")
		env.ObserveWorlds(reg)
	}
	if *telemetry != "" {
		addr, err := obs.StartTelemetry(reg, *telemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics\n", addr)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list {
		for _, e := range exper.All() {
			fmt.Printf("%-7s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := exper.Options{Quick: *quick, Parallel: *parallel, PlanFile: *tuned}
	var doc string
	if *expID != "" {
		e, ok := exper.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; have: %s\n",
				*expID, strings.Join(exper.IDs(), " "))
			os.Exit(2)
		}
		r, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "## %s — %s\n\n%s\n", r.ID, r.Title, r.Text)
		if len(r.Metrics) > 0 {
			b.WriteString("Headline metrics:\n")
			// Sorted like RenderAll: map order would make -exp output differ
			// run to run (and worker count to worker count), which breaks any
			// byte-identity diff of saved reports.
			keys := make([]string, 0, len(r.Metrics))
			for k := range r.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "  %-46s %8.3f\n", k, r.Metrics[k])
			}
		}
		doc = b.String()
	} else {
		var err error
		doc, _, err = exper.RenderAll(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	} else {
		fmt.Print(doc)
	}

	if reg != nil {
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err == nil {
				err = reg.WriteChromeTrace(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *traceOut)
		}
		if *metrics {
			fmt.Print(reg.Snapshot().String())
		}
	}
}
