package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const cellsBase = `[
 {"platform":"ARM-N1","collective":"bcast","component":"xhc-tree","size":1024,"avg_lat_us":10.0},
 {"platform":"ARM-N1","collective":"bcast","component":"xhc-tree","size":4096,"avg_lat_us":20.0}
]`

func runStat(t *testing.T, args ...string) (int, verdict, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	var v verdict
	if out.Len() > 0 {
		if err := json.Unmarshal(out.Bytes(), &v); err != nil {
			t.Fatalf("verdict is not JSON: %v\n%s", err, out.String())
		}
	}
	return code, v, errb.String()
}

func TestSelfDiffPasses(t *testing.T) {
	p := writeTemp(t, "base.json", cellsBase)
	code, v, _ := runStat(t, "-baseline", p, "-current", p)
	if code != 0 {
		t.Fatalf("self-diff exit = %d", code)
	}
	if v.Verdict != "pass" || v.Compared != 2 || v.Regressions != 0 {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestSyntheticRegressionFails(t *testing.T) {
	base := writeTemp(t, "base.json", cellsBase)
	cur := writeTemp(t, "cur.json", `[
 {"platform":"ARM-N1","collective":"bcast","component":"xhc-tree","size":1024,"avg_lat_us":15.0},
 {"platform":"ARM-N1","collective":"bcast","component":"xhc-tree","size":4096,"avg_lat_us":20.0}
]`)
	code, v, _ := runStat(t, "-baseline", base, "-current", cur)
	if code != 1 {
		t.Fatalf("regression exit = %d, want 1", code)
	}
	if v.Verdict != "fail" || v.Regressions != 1 {
		t.Fatalf("verdict = %+v", v)
	}
	if v.Cells[0].Key != "ARM-N1/bcast/xhc-tree/1024" || v.Cells[0].Status != "regressed" {
		t.Fatalf("worst cell = %+v", v.Cells[0])
	}
}

func TestFloorSuppressesNoise(t *testing.T) {
	base := writeTemp(t, "base.json", `[{"platform":"P","collective":"bcast","component":"c","size":4,"avg_lat_us":0.5}]`)
	cur := writeTemp(t, "cur.json", `[{"platform":"P","collective":"bcast","component":"c","size":4,"avg_lat_us":1.0}]`)
	// 100% relative growth but only 0.5us absolute: under the 1us floor.
	code, v, _ := runStat(t, "-baseline", base, "-current", cur)
	if code != 0 || v.Regressions != 0 {
		t.Fatalf("floor failed: exit %d, %+v", code, v)
	}
	// With the floor lowered it must regress.
	code, _, _ = runStat(t, "-baseline", base, "-current", cur, "-floor-us", "0.1")
	if code != 1 {
		t.Fatalf("low floor exit = %d, want 1", code)
	}
}

func TestBenchTrajectoryFormat(t *testing.T) {
	base := writeTemp(t, "b.json", `{"description":"x","benchmarks":[
	 {"name":"BenchmarkA","ns_per_op":1000},{"name":"BenchmarkB","ns_per_op":50000}]}`)
	cur := writeTemp(t, "c.json", `{"description":"x","benchmarks":[
	 {"name":"BenchmarkA","ns_per_op":1000},{"name":"BenchmarkB","ns_per_op":90000}]}`)
	code, v, _ := runStat(t, "-baseline", base, "-current", cur)
	if code != 1 || v.Regressions != 1 {
		t.Fatalf("trajectory diff: exit %d, %+v", code, v)
	}
	if v.Cells[0].Key != "BenchmarkB" {
		t.Fatalf("regressed cell = %q", v.Cells[0].Key)
	}
}

// TestMissingBaselineCellFails pins the silent-drift fix: a baseline cell
// the candidate did not measure must fail the gate with its own verdict,
// not slip into only_in_baseline on a passing report. (Losing a cell is
// indistinguishable from an unboundedly large regression.)
func TestMissingBaselineCellFails(t *testing.T) {
	base := writeTemp(t, "b.json", cellsBase)
	cur := writeTemp(t, "c.json", `[{"platform":"ARM-N1","collective":"bcast","component":"xhc-tree","size":1024,"avg_lat_us":10.0},
	 {"platform":"ARM-N1","collective":"bcast","component":"tuned","size":1024,"avg_lat_us":5.0}]`)
	code, v, _ := runStat(t, "-baseline", base, "-current", cur)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (missing baseline cell)", code)
	}
	if v.Verdict != "fail-missing-cells" || v.Missing != 1 {
		t.Fatalf("verdict = %q missing = %d, want fail-missing-cells/1 (%+v)", v.Verdict, v.Missing, v)
	}
	if len(v.OnlyBase) != 1 || len(v.OnlyCurrent) != 1 || v.Compared != 1 {
		t.Fatalf("cell accounting = %+v", v)
	}
	// Extra cells in the candidate alone must NOT fail: growing coverage
	// is fine, losing it is not.
	code, v, _ = runStat(t, "-baseline", cur, "-current", writeTemp(t, "c2.json", `[
	 {"platform":"ARM-N1","collective":"bcast","component":"xhc-tree","size":1024,"avg_lat_us":10.0},
	 {"platform":"ARM-N1","collective":"bcast","component":"tuned","size":1024,"avg_lat_us":5.0},
	 {"platform":"ARM-N1","collective":"bcast","component":"sm","size":1024,"avg_lat_us":7.0}]`))
	if code != 0 || v.Verdict != "pass" {
		t.Fatalf("extra candidate cell: exit %d verdict %q, want pass", code, v.Verdict)
	}
	// Regressions take precedence over the missing-cell verdict.
	code, v, _ = runStat(t, "-baseline", base, "-current",
		writeTemp(t, "c3.json", `[{"platform":"ARM-N1","collective":"bcast","component":"xhc-tree","size":1024,"avg_lat_us":50.0}]`))
	if code != 1 || v.Verdict != "fail" || v.Missing != 1 || v.Regressions != 1 {
		t.Fatalf("mixed failure: exit %d, %+v", code, v)
	}
}

// TestZeroBaselineCellFlagged pins the relative-growth fix for cells whose
// baseline latency is zero: the infinite ratio is flagged explicitly
// (zero_baseline, since JSON cannot carry Inf), the cell still regresses
// on absolute growth, and it sorts ABOVE every finite-ratio cell instead
// of hiding at the bottom with its zero delta_ratio.
func TestZeroBaselineCellFlagged(t *testing.T) {
	base := writeTemp(t, "b.json", `[
	 {"platform":"P","collective":"bcast","component":"c","size":4,"avg_lat_us":0.0},
	 {"platform":"P","collective":"bcast","component":"c","size":64,"avg_lat_us":10.0}]`)
	cur := writeTemp(t, "c.json", `[
	 {"platform":"P","collective":"bcast","component":"c","size":4,"avg_lat_us":5.0},
	 {"platform":"P","collective":"bcast","component":"c","size":64,"avg_lat_us":12.0}]`)
	code, v, _ := runStat(t, "-baseline", base, "-current", cur)
	if code != 1 || v.Regressions != 2 {
		t.Fatalf("exit %d regressions %d, want 1/2 (%+v)", code, v.Regressions, v)
	}
	if v.Cells[0].Key != "P/bcast/c/4" || !v.Cells[0].ZeroBaseline {
		t.Fatalf("zero-baseline cell not first/flagged: %+v", v.Cells)
	}
	if v.Cells[0].DeltaRatio != 0 {
		t.Fatalf("zero-baseline DeltaRatio = %v, want 0 (flag carries the meaning)", v.Cells[0].DeltaRatio)
	}
	// The verdict document must survive a JSON round-trip (no Inf/NaN).
	var buf bytes.Buffer
	code = run([]string{"-baseline", base, "-current", cur}, &buf, &bytes.Buffer{})
	var rt verdict
	if err := json.Unmarshal(buf.Bytes(), &rt); err != nil {
		t.Fatalf("verdict not round-trippable JSON: %v", err)
	}
	_ = code
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runStat(t); code != 2 {
		t.Fatalf("missing flags exit = %d, want 2", code)
	}
	p := writeTemp(t, "bad.json", "not json")
	if code, _, _ := runStat(t, "-baseline", p, "-current", p); code != 2 {
		t.Fatalf("bad input exit = %d, want 2", code)
	}
}
