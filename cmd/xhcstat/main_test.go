package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const cellsBase = `[
 {"platform":"ARM-N1","collective":"bcast","component":"xhc-tree","size":1024,"avg_lat_us":10.0},
 {"platform":"ARM-N1","collective":"bcast","component":"xhc-tree","size":4096,"avg_lat_us":20.0}
]`

func runStat(t *testing.T, args ...string) (int, verdict, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	var v verdict
	if out.Len() > 0 {
		if err := json.Unmarshal(out.Bytes(), &v); err != nil {
			t.Fatalf("verdict is not JSON: %v\n%s", err, out.String())
		}
	}
	return code, v, errb.String()
}

func TestSelfDiffPasses(t *testing.T) {
	p := writeTemp(t, "base.json", cellsBase)
	code, v, _ := runStat(t, "-baseline", p, "-current", p)
	if code != 0 {
		t.Fatalf("self-diff exit = %d", code)
	}
	if v.Verdict != "pass" || v.Compared != 2 || v.Regressions != 0 {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestSyntheticRegressionFails(t *testing.T) {
	base := writeTemp(t, "base.json", cellsBase)
	cur := writeTemp(t, "cur.json", `[
 {"platform":"ARM-N1","collective":"bcast","component":"xhc-tree","size":1024,"avg_lat_us":15.0},
 {"platform":"ARM-N1","collective":"bcast","component":"xhc-tree","size":4096,"avg_lat_us":20.0}
]`)
	code, v, _ := runStat(t, "-baseline", base, "-current", cur)
	if code != 1 {
		t.Fatalf("regression exit = %d, want 1", code)
	}
	if v.Verdict != "fail" || v.Regressions != 1 {
		t.Fatalf("verdict = %+v", v)
	}
	if v.Cells[0].Key != "ARM-N1/bcast/xhc-tree/1024" || v.Cells[0].Status != "regressed" {
		t.Fatalf("worst cell = %+v", v.Cells[0])
	}
}

func TestFloorSuppressesNoise(t *testing.T) {
	base := writeTemp(t, "base.json", `[{"platform":"P","collective":"bcast","component":"c","size":4,"avg_lat_us":0.5}]`)
	cur := writeTemp(t, "cur.json", `[{"platform":"P","collective":"bcast","component":"c","size":4,"avg_lat_us":1.0}]`)
	// 100% relative growth but only 0.5us absolute: under the 1us floor.
	code, v, _ := runStat(t, "-baseline", base, "-current", cur)
	if code != 0 || v.Regressions != 0 {
		t.Fatalf("floor failed: exit %d, %+v", code, v)
	}
	// With the floor lowered it must regress.
	code, _, _ = runStat(t, "-baseline", base, "-current", cur, "-floor-us", "0.1")
	if code != 1 {
		t.Fatalf("low floor exit = %d, want 1", code)
	}
}

func TestBenchTrajectoryFormat(t *testing.T) {
	base := writeTemp(t, "b.json", `{"description":"x","benchmarks":[
	 {"name":"BenchmarkA","ns_per_op":1000},{"name":"BenchmarkB","ns_per_op":50000}]}`)
	cur := writeTemp(t, "c.json", `{"description":"x","benchmarks":[
	 {"name":"BenchmarkA","ns_per_op":1000},{"name":"BenchmarkB","ns_per_op":90000}]}`)
	code, v, _ := runStat(t, "-baseline", base, "-current", cur)
	if code != 1 || v.Regressions != 1 {
		t.Fatalf("trajectory diff: exit %d, %+v", code, v)
	}
	if v.Cells[0].Key != "BenchmarkB" {
		t.Fatalf("regressed cell = %q", v.Cells[0].Key)
	}
}

func TestDisjointCellsReported(t *testing.T) {
	base := writeTemp(t, "b.json", cellsBase)
	cur := writeTemp(t, "c.json", `[{"platform":"ARM-N1","collective":"bcast","component":"xhc-tree","size":1024,"avg_lat_us":10.0},
	 {"platform":"ARM-N1","collective":"bcast","component":"tuned","size":1024,"avg_lat_us":5.0}]`)
	code, v, _ := runStat(t, "-baseline", base, "-current", cur)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if len(v.OnlyBase) != 1 || len(v.OnlyCurrent) != 1 || v.Compared != 1 {
		t.Fatalf("cell accounting = %+v", v)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runStat(t); code != 2 {
		t.Fatalf("missing flags exit = %d, want 2", code)
	}
	p := writeTemp(t, "bad.json", "not json")
	if code, _, _ := runStat(t, "-baseline", p, "-current", p); code != 2 {
		t.Fatalf("bad input exit = %d, want 2", code)
	}
}
