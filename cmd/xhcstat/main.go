// Command xhcstat is the benchmark regression gate: it diffs two latency
// measurement files cell by cell and renders a machine-readable verdict.
//
// Inputs may be xhcbench -json cell arrays (keyed by
// platform/collective/component/size, compared on avg_lat_us) or
// BENCH_*.json trajectory files (keyed by benchmark name, compared on
// ns_per_op). A cell regresses when its latency grows by more than
// -threshold relative AND more than -floor-us absolute — the floor keeps
// sub-microsecond noise on tiny cells from failing the gate. A baseline
// cell the candidate did not measure fails the gate with the distinct
// verdict "fail-missing-cells": losing coverage must not read as passing.
//
// Examples:
//
//	xhcbench -json new.json && xhcstat -baseline old.json -current new.json
//	xhcstat -baseline BENCH_flowsolver.json -current BENCH_new.json -threshold 0.10
//
// Exit status: 0 all cells within threshold, 1 at least one regression or
// missing baseline cell, 2 usage or parse error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// cell is one comparable measurement: a stable key and a latency in us.
type cell struct {
	Key string
	US  float64
}

// benchCell mirrors xhcbench's -json cell record (fields it keys/compares).
type benchCell struct {
	Platform   string  `json:"platform"`
	Collective string  `json:"collective"`
	Component  string  `json:"component"`
	Size       int     `json:"size"`
	AvgLatUS   float64 `json:"avg_lat_us"`
}

// trajFile mirrors the BENCH_*.json trajectory shape.
type trajFile struct {
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// loadCells parses either supported format into keyed cells.
func loadCells(path string) ([]cell, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bench []benchCell
	if err := json.Unmarshal(data, &bench); err == nil {
		out := make([]cell, 0, len(bench))
		for _, b := range bench {
			out = append(out, cell{
				Key: fmt.Sprintf("%s/%s/%s/%d", b.Platform, b.Collective, b.Component, b.Size),
				US:  b.AvgLatUS,
			})
		}
		return out, nil
	}
	var traj trajFile
	if err := json.Unmarshal(data, &traj); err != nil {
		return nil, fmt.Errorf("%s: not an xhcbench cell array or BENCH trajectory: %w", path, err)
	}
	if len(traj.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	out := make([]cell, 0, len(traj.Benchmarks))
	for _, b := range traj.Benchmarks {
		out = append(out, cell{Key: b.Name, US: b.NsPerOp / 1e3})
	}
	return out, nil
}

// cellVerdict is one compared cell in the verdict document.
type cellVerdict struct {
	Key       string  `json:"key"`
	BaseUS    float64 `json:"base_us"`
	CurrentUS float64 `json:"current_us"`
	DeltaUS   float64 `json:"delta_us"`
	// DeltaRatio is DeltaUS/BaseUS — meaningless (and left zero) when the
	// baseline is zero, which ZeroBaseline flags explicitly: JSON cannot
	// encode the Inf the division would produce, and a zero DeltaRatio must
	// not make a grown-from-zero cell look unchanged.
	DeltaRatio   float64 `json:"delta_ratio"`
	ZeroBaseline bool    `json:"zero_baseline,omitempty"`
	Status       string  `json:"status"` // "ok" | "improved" | "regressed"
}

// verdict is xhcstat's machine-readable output document.
type verdict struct {
	Baseline  string  `json:"baseline"`
	Current   string  `json:"current"`
	Threshold float64 `json:"threshold"`
	FloorUS   float64 `json:"floor_us"`
	Compared  int     `json:"compared"`
	// OnlyBase lists baseline cells the candidate did not measure. A
	// non-empty list fails the gate ("fail-missing-cells"): a cell that
	// silently disappears from the sweep is indistinguishable from an
	// arbitrarily large regression.
	OnlyBase    []string      `json:"only_in_baseline,omitempty"`
	OnlyCurrent []string      `json:"only_in_current,omitempty"`
	Missing     int           `json:"missing"`
	Regressions int           `json:"regressions"`
	Improved    int           `json:"improved"`
	Verdict     string        `json:"verdict"` // "pass" | "fail" | "fail-missing-cells"
	Cells       []cellVerdict `json:"cells"`
}

// compare builds the verdict for two cell sets.
func compare(basePath, curPath string, base, cur []cell, threshold, floorUS float64) verdict {
	v := verdict{
		Baseline: basePath, Current: curPath,
		Threshold: threshold, FloorUS: floorUS,
		Verdict: "pass",
	}
	baseBy := make(map[string]float64, len(base))
	for _, c := range base {
		baseBy[c.Key] = c.US
	}
	curSeen := make(map[string]bool, len(cur))
	for _, c := range cur {
		curSeen[c.Key] = true
		b, ok := baseBy[c.Key]
		if !ok {
			v.OnlyCurrent = append(v.OnlyCurrent, c.Key)
			continue
		}
		v.Compared++
		d := c.US - b
		cv := cellVerdict{Key: c.Key, BaseUS: b, CurrentUS: c.US, DeltaUS: d, Status: "ok"}
		if b > 0 {
			cv.DeltaRatio = d / b
		} else if d != 0 {
			// Relative growth from a zero baseline is infinite; flag it
			// instead of dividing (JSON has no Inf) or leaving the zero
			// ratio to masquerade as "unchanged".
			cv.ZeroBaseline = true
		}
		switch {
		case d > floorUS && (b <= 0 || cv.DeltaRatio > threshold):
			cv.Status = "regressed"
			v.Regressions++
		case -d > floorUS && b > 0 && -cv.DeltaRatio > threshold:
			cv.Status = "improved"
			v.Improved++
		}
		v.Cells = append(v.Cells, cv)
	}
	for _, c := range base {
		if !curSeen[c.Key] {
			v.OnlyBase = append(v.OnlyBase, c.Key)
		}
	}
	v.Missing = len(v.OnlyBase)
	// Worst first. A regressed zero-baseline cell's true ratio is infinite,
	// so it sorts above every finite ratio rather than (with its zero
	// DeltaRatio) below the cells that merely grew a few percent.
	rank := func(c cellVerdict) float64 {
		if c.ZeroBaseline && c.DeltaUS > 0 {
			return math.MaxFloat64
		}
		return c.DeltaRatio
	}
	sort.Slice(v.Cells, func(i, j int) bool { return rank(v.Cells[i]) > rank(v.Cells[j]) })
	switch {
	case v.Regressions > 0:
		v.Verdict = "fail"
	case v.Missing > 0:
		// Distinct from "fail": no measured cell got slower, but baseline
		// coverage was lost — which would otherwise let a regression hide
		// by not running.
		v.Verdict = "fail-missing-cells"
	}
	return v
}

// run is the testable entry point: parses args, writes the verdict JSON to
// stdout and a summary line to errw, and returns the exit code.
func run(args []string, stdout, errw io.Writer) int {
	fs := flag.NewFlagSet("xhcstat", flag.ContinueOnError)
	fs.SetOutput(errw)
	baseline := fs.String("baseline", "", "baseline JSON (xhcbench -json cells or BENCH_*.json)")
	current := fs.String("current", "", "current JSON to gate against the baseline")
	threshold := fs.Float64("threshold", 0.05, "relative latency growth allowed per cell")
	floorUS := fs.Float64("floor-us", 1.0, "absolute growth (us) a cell must exceed to count")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baseline == "" || *current == "" {
		fmt.Fprintln(errw, "xhcstat: -baseline and -current are required")
		fs.Usage()
		return 2
	}
	base, err := loadCells(*baseline)
	if err != nil {
		fmt.Fprintln(errw, "xhcstat:", err)
		return 2
	}
	cur, err := loadCells(*current)
	if err != nil {
		fmt.Fprintln(errw, "xhcstat:", err)
		return 2
	}
	v := compare(*baseline, *current, base, cur, *threshold, *floorUS)
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(errw, "xhcstat:", err)
		return 2
	}
	fmt.Fprintf(errw, "xhcstat: %d cells compared, %d regressed, %d improved, %d missing: %s\n",
		v.Compared, v.Regressions, v.Improved, v.Missing, v.Verdict)
	if v.Verdict != "pass" {
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
