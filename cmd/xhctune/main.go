// Command xhctune closes the telemetry→tuning loop (DESIGN.md §17).
//
// Modes:
//
//	xhctune -sweep -platform ARM-N1 -plan tuned/ARM-N1.json -benchout BENCH_tune.json
//	    Offline sweep-and-select: measure every candidate plan on every
//	    pinned cell, persist the winner per cell to the plan file, and
//	    write the default-vs-tuned cells (xhcstat-diffable) to -benchout.
//
//	xhctune -check -plan tuned/ARM-N1.json
//	    No-regression repro gate: replay every pinned cell fresh under the
//	    default plan and the file's winning plan; fail if any tuned cell
//	    is more than 5% and 1us slower than the default.
//
//	xhctune -online
//	    Online bandit demo: run the epsilon-greedy bandit against live
//	    communicators on both backends, switching plans at safe operation
//	    boundaries, and report the chosen plan per backend.
//
// Exit status: 0 success, 1 regression (or online failure), 2 usage or
// plan-file error — the same convention as xhcstat.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"xhc/internal/tune"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("xhctune", flag.ContinueOnError)
	sweep := fs.Bool("sweep", false, "run the offline sweep-and-select and persist the plan file")
	check := fs.Bool("check", false, "replay the plan file's pinned cells as a no-regression gate")
	online := fs.Bool("online", false, "run the online bandit against live communicators on both backends")
	quick := fs.Bool("quick", false, "trim iteration counts (simulated latencies and verdicts are unchanged)")
	platform := fs.String("platform", "ARM-N1", "simulated platform to tune (sweep mode)")
	planPath := fs.String("plan", "", "plan file path (default tuned/<platform>.json)")
	benchOut := fs.String("benchout", "", "sweep mode: also write default-vs-tuned cells as JSON to this file")
	np := fs.Int("np", 0, "rank count (0 = all cores; must match between sweep and check)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	modes := 0
	for _, m := range []bool{*sweep, *check, *online} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "xhctune: exactly one of -sweep, -check, -online is required")
		fs.Usage()
		return 2
	}
	if *planPath == "" {
		*planPath = "tuned/" + *platform + ".json"
	}
	progress := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	switch {
	case *sweep:
		f, bench, err := tune.Sweep(tune.SweepOpts{
			Platform: *platform, NRanks: *np, Quick: *quick, Progress: progress,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "xhctune:", err)
			return 2
		}
		data, err := f.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "xhctune:", err)
			return 2
		}
		if err := os.WriteFile(*planPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "xhctune:", err)
			return 2
		}
		if *benchOut != "" {
			bd, err := json.MarshalIndent(bench, "", "  ")
			if err == nil {
				err = os.WriteFile(*benchOut, append(bd, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "xhctune:", err)
				return 2
			}
		}
		improved := 0
		for _, c := range f.Cells {
			delta := 0.0
			if c.BaselineUS > 0 {
				delta = (c.BaselineUS - c.TunedUS) / c.BaselineUS * 100
			}
			if c.Plan.Name != "default" && delta >= 5 {
				improved++
			}
			fmt.Printf("%-32s plan=%-12s default=%8.2fus tuned=%8.2fus  %+.1f%%\n",
				c.Key(), c.Plan.Name, c.BaselineUS, c.TunedUS, -delta)
		}
		fmt.Printf("xhctune: wrote %s (%d cells, %d improved >= 5%%)\n", *planPath, len(f.Cells), improved)
		return 0

	case *check:
		f, err := tune.Load(*planPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xhctune:", err)
			return 2
		}
		results, regressions, err := tune.Check(f, tune.CheckOpts{NRanks: *np, Quick: *quick, Progress: progress})
		if err != nil {
			fmt.Fprintln(os.Stderr, "xhctune:", err)
			return 2
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "xhctune:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "xhctune: %d cells replayed, %d regressed\n", len(results), regressions)
		if regressions > 0 {
			return 1
		}
		return 0

	default: // online
		rounds, ops := 0, 0 // package defaults
		if *quick {
			rounds, ops = 8, 4
		}
		sim, err := tune.RunOnlineSim(*platform, *np, tune.OnlineOpts{Rounds: rounds, OpsPerRound: ops})
		if err != nil {
			fmt.Fprintln(os.Stderr, "xhctune:", err)
			return 1
		}
		fmt.Printf("online sim  %-10s best=%-12s switches=%d trace=%v\n",
			*platform, sim.Best.Name, sim.Switches, sim.Trace)
		gnp := *np
		if gnp == 0 || gnp > 16 {
			gnp = 8 // gxhc runs real goroutines; keep the demo node-sized
		}
		gx, err := tune.RunOnlineGxhc(gnp, tune.OnlineOpts{Rounds: rounds, OpsPerRound: ops}, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xhctune:", err)
			return 1
		}
		fmt.Printf("online gxhc np=%-7d best=%-12s switches=%d trace=%v\n",
			gnp, gx.Best.Name, gx.Switches, gx.Trace)
		return 0
	}
}
