// Command xhcapps runs the paper's application models (PiSvM, miniAMR,
// CNTK) across collective components on a simulated platform — the data
// behind Figs. 12–14.
//
// Examples:
//
//	xhcapps -app pisvm -platform ARM-N1
//	xhcapps -app miniamr -config challenging -platform Epyc-2P
//	xhcapps -app cntk -comp xhc-tree,tuned,ucc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xhc/internal/apps"
	"xhc/internal/env"
	"xhc/internal/obs"
	"xhc/internal/topo"
)

func main() {
	app := flag.String("app", "pisvm", "pisvm | miniamr | cntk")
	platform := flag.String("platform", "Epyc-2P", "Epyc-1P | Epyc-2P | ARM-N1")
	config := flag.String("config", "default", "miniamr: default | challenging")
	comps := flag.String("comp", "xhc-tree,tuned,ucc,smhc-tree,xbrc", "components to compare")
	nranks := flag.Int("np", 0, "rank count (0 = all cores)")
	traceOut := flag.String("trace", "", "write per-rank phase spans as Chrome-trace JSON to this file")
	metrics := flag.Bool("metrics", false, "print the unified observability snapshot on exit")
	telemetry := flag.String("telemetry", "", "serve live telemetry (Prometheus /metrics, /flight dumps, pprof) on this address during the run")
	flag.Parse()

	var reg *obs.Registry
	if *traceOut != "" || *metrics || *telemetry != "" {
		reg = obs.NewRegistry(*traceOut != "")
		env.ObserveWorlds(reg)
	}
	if *telemetry != "" {
		addr, err := obs.StartTelemetry(reg, *telemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics\n", addr)
	}

	top := topo.ByName(*platform)
	if top == nil {
		fmt.Fprintf(os.Stderr, "unknown platform %q\n", *platform)
		os.Exit(2)
	}

	names := strings.Split(*comps, ",")
	run := func(name string) (apps.Result, error) {
		base := apps.Config{Topo: top, NRanks: *nranks, Component: strings.TrimSpace(name)}
		switch *app {
		case "pisvm":
			return apps.PiSvM(apps.DefaultPiSvM(base))
		case "miniamr":
			cfg := apps.DefaultMiniAMR(base)
			if *config == "challenging" {
				cfg = apps.ChallengingMiniAMR(base)
			}
			return apps.MiniAMR(cfg)
		case "cntk":
			return apps.CNTK(apps.DefaultCNTK(base))
		}
		return apps.Result{}, fmt.Errorf("unknown app %q", *app)
	}

	report, _, err := apps.CompareComponents(run, names)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	np := *nranks
	if np == 0 {
		np = top.NCores
	}
	fmt.Printf("# %s on %s (%d ranks)\n%s", *app, top.Name, np, report)

	if reg != nil {
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err == nil {
				err = reg.WriteChromeTrace(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *traceOut)
		}
		if *metrics {
			fmt.Print(reg.Snapshot().String())
		}
	}
}
