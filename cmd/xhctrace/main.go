// Command xhctrace is the critical-path analyzer: it reads observability
// artifacts the other tools produce — flight-recorder dumps (xhcverify
// -flightdir files, the telemetry /flight endpoint) and Chrome-trace JSON
// (xhcrepro/xhcapps -trace) — and prints per-(collective, size-class,
// world) critical-path summaries: how many operations were analyzed, the
// mean critical-path latency, and the blame split across edge kinds
// (expose / flag-wait / chunk-copy / reduce / ack / nic-stage / fabric /
// queue-wait). Dumps taken by the straggler detector carry their replay
// token; xhctrace surfaces it next to the offending op so a slow chain
// can be replayed bit-exactly with xhcverify.
//
// Flight dumps already carry each rank's phase breakdown, so the critical
// record of every operation step (the last-finishing rank, ties toward
// the lower lane — the same rule internal/obs uses) attributes directly.
// Chrome traces are rebuilt into a span graph and walked causally, using
// the "from" edges wait spans carry.
//
// Examples:
//
//	xhcverify -flightdir dumps -platform 4xEpyc-1P ... && xhctrace dumps/*.json
//	xhcrepro -trace trace.json && xhctrace trace.json
//
// Exit status: 0 on success, 1 when an input could not be parsed, 2 on
// usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"xhc/internal/obs"
)

// pathCell aggregates the critical paths of one (world, op, size-class).
type pathCell struct {
	World   string             `json:"world"`
	Op      string             `json:"op"`
	Size    string             `json:"size_class"`
	Ops     int64              `json:"ops"`
	PathUS  float64            `json:"path_us"`
	BlameUS map[string]float64 `json:"blame_us"`
}

func (c *pathCell) key() string { return c.World + "\x00" + c.Op + "\x00" + c.Size }

// analysis is the whole report: cells plus the replay tokens of any
// anomaly dumps seen.
type analysis struct {
	cells  map[string]*pathCell
	replay []string
}

func newAnalysis() *analysis { return &analysis{cells: make(map[string]*pathCell)} }

func (a *analysis) cell(world, op string, bytes int64) *pathCell {
	c := &pathCell{World: world, Op: op, Size: obs.SizeClassLabel(obs.SizeClass(int(bytes)))}
	if got, ok := a.cells[c.key()]; ok {
		return got
	}
	c.BlameUS = make(map[string]float64)
	a.cells[c.key()] = c
	return c
}

// flightDump mirrors the obs.FlightDump JSON shape (only what we read).
type flightDump struct {
	World       string `json:"world"`
	Kind        string `json:"kind"`
	Reason      string `json:"reason"`
	ReplayToken string `json:"replay_token"`
	OffLane     int    `json:"offending_lane"`
	OffSeq      uint64 `json:"offending_seq"`
	Records     []struct {
		Lane     int                `json:"lane"`
		Node     int                `json:"node"`
		Op       string             `json:"op"`
		Seq      uint64             `json:"seq"`
		Bytes    int64              `json:"bytes"`
		StartUS  float64            `json:"start_us"`
		DurUS    float64            `json:"dur_us"`
		Net      bool               `json:"net"`
		Request  bool               `json:"request"`
		PhasesUS map[string]float64 `json:"phases_us"`
	} `json:"records"`
}

// chromeFile mirrors the Chrome trace-event JSON shape (only what we read).
type chromeFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// phaseByName maps a phase's rendered name back to its code.
func phaseByName(name string) (obs.Phase, bool) {
	for p := obs.Phase(0); p < obs.NPhases; p++ {
		if p.String() == name {
			return p, true
		}
	}
	return 0, false
}

// addFlight folds one flight dump into the analysis: collective-body
// records regroup into operation steps, each step's critical (last-
// finishing, tie toward the lower (node, lane)) record attributes its
// phase breakdown; net and request records attribute directly, the way
// the live RecordNet / RecordRequest paths do.
func (a *analysis) addFlight(d *flightDump) {
	if d.ReplayToken != "" || d.Kind == "straggler" || d.Kind == "cluster-straggler" {
		tok := d.ReplayToken
		if tok == "" {
			tok = "(no replay token)"
		}
		a.replay = append(a.replay,
			fmt.Sprintf("%s %s lane=%d seq=%d token=%s", d.World, d.Kind, d.OffLane, d.OffSeq, tok))
	}
	type stepKey struct {
		op  string
		seq uint64
	}
	type critRec struct {
		node, lane int
		endUS      float64
		startUS    float64
		bytes      int64
		phases     map[string]float64
	}
	steps := make(map[stepKey]*critRec)
	var order []stepKey
	for _, r := range d.Records {
		switch {
		case r.Request:
			if q, ok := r.PhasesUS[obs.PhaseQueueWait.String()]; ok && q > 0 {
				c := a.cell(d.World, r.Op, r.Bytes)
				c.BlameUS[obs.EdgeQueueWait.String()] += q
			}
		case r.Net:
			c := a.cell(d.World, r.Op, r.Bytes)
			for name, us := range r.PhasesUS {
				if ph, ok := phaseByName(name); ok {
					if e, ok := obs.EdgeOf(ph); ok {
						c.BlameUS[e.String()] += us
					}
				}
			}
		default:
			k := stepKey{op: r.Op, seq: r.Seq}
			end := r.StartUS + r.DurUS
			cur, ok := steps[k]
			if !ok {
				order = append(order, k)
			}
			if !ok || end > cur.endUS ||
				(end == cur.endUS && (r.Node < cur.node || (r.Node == cur.node && r.Lane < cur.lane))) {
				steps[k] = &critRec{
					node: r.Node, lane: r.Lane, endUS: end, startUS: r.StartUS,
					bytes: r.Bytes, phases: r.PhasesUS,
				}
			}
		}
	}
	for _, k := range order {
		cr := steps[k]
		c := a.cell(d.World, k.op, cr.bytes)
		c.Ops++
		c.PathUS += cr.endUS - cr.startUS
		for name, us := range cr.phases {
			if ph, ok := phaseByName(name); ok {
				if e, ok := obs.EdgeOf(ph); ok {
					c.BlameUS[e.String()] += us
				}
			}
		}
	}
}

// addChrome rebuilds each trace process into a span graph and folds its
// critical paths in.
func (a *analysis) addChrome(cf *chromeFile) {
	names := make(map[int]string)
	spansByPID := make(map[int][]obs.Span)
	var pids []int
	argInt := func(args map[string]any, key string, def int64) int64 {
		if v, ok := args[key]; ok {
			if f, ok := v.(float64); ok {
				return int64(f)
			}
		}
		return def
	}
	for _, ev := range cf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			if n, ok := ev.Args["name"].(string); ok {
				names[ev.PID] = n
			}
			continue
		}
		if ev.Ph != "X" {
			continue
		}
		ph, ok := phaseByName(ev.Name)
		if !ok {
			continue
		}
		if _, seen := spansByPID[ev.PID]; !seen {
			pids = append(pids, ev.PID)
		}
		// Times in integer nanoseconds keep the walk exact for sim traces.
		spansByPID[ev.PID] = append(spansByPID[ev.PID], obs.Span{
			Lane: ev.TID, Level: int(argInt(ev.Args, "level", -1)), Phase: ph,
			Op: ev.Cat, Seq: uint64(argInt(ev.Args, "seq", 0)),
			Start: int64(ev.TS * 1e3), End: int64((ev.TS + ev.Dur) * 1e3),
			Bytes: argInt(ev.Args, "bytes", 0),
			From:  int(argInt(ev.Args, "from", -1)),
		})
	}
	sort.Ints(pids)
	for _, pid := range pids {
		world := names[pid]
		if world == "" {
			world = fmt.Sprintf("pid %d", pid)
		}
		g := obs.NewSpanGraph(spansByPID[pid])
		for _, cp := range g.CriticalPaths() {
			c := a.cell(world, cp.Op, cp.Bytes)
			c.Ops++
			c.PathUS += float64(cp.End-cp.Start) / 1e3
			for e := obs.EdgeKind(0); e < obs.NEdges; e++ {
				if cp.ByEdge[e] > 0 {
					c.BlameUS[e.String()] += float64(cp.ByEdge[e]) / 1e3
				}
			}
		}
	}
}

// load parses one input file into the analysis. Accepted shapes: a single
// flight dump object, a JSON array of flight dumps (the /flight
// endpoint), or a Chrome trace ("traceEvents").
func (a *analysis) load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	trim := strings.TrimLeft(string(data), " \t\r\n")
	if strings.HasPrefix(trim, "[") {
		var dumps []flightDump
		if err := json.Unmarshal(data, &dumps); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for i := range dumps {
			a.addFlight(&dumps[i])
		}
		return nil
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if _, ok := probe["traceEvents"]; ok {
		var cf chromeFile
		if err := json.Unmarshal(data, &cf); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		a.addChrome(&cf)
		return nil
	}
	var d flightDump
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	a.addFlight(&d)
	return nil
}

func (a *analysis) sorted() []*pathCell {
	out := make([]*pathCell, 0, len(a.cells))
	for _, c := range a.cells {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].World != out[j].World {
			return out[i].World < out[j].World
		}
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Size < out[j].Size
	})
	return out
}

func (a *analysis) printText() {
	fmt.Println("# critical-path summary")
	for _, c := range a.sorted() {
		// Edge figures print as per-op averages (matching avg_path) so a
		// row reads as one typical op's blame decomposition; percentages
		// come from the run totals either way.
		div := 1.0
		if c.Ops > 0 {
			div = float64(c.Ops)
		}
		var parts []string
		// Report edges in blame-report order, skipping empties.
		for e := obs.EdgeKind(0); e < obs.NEdges; e++ {
			us := c.BlameUS[e.String()]
			if us <= 0 {
				continue
			}
			pct := 0.0
			if c.PathUS > 0 {
				pct = 100 * us / c.PathUS
			}
			parts = append(parts, fmt.Sprintf("%s %.1fus (%.0f%%)", e, us/div, pct))
		}
		avg := 0.0
		if c.Ops > 0 {
			avg = c.PathUS / float64(c.Ops)
		}
		fmt.Printf("%-28s %-10s %-6s ops=%-4d avg_path=%8.2fus  %s\n",
			c.World, c.Op, c.Size, c.Ops, avg, strings.Join(parts, ", "))
	}
	if len(a.replay) > 0 {
		fmt.Println("# straggler replay tokens")
		for _, r := range a.replay {
			fmt.Println("  " + r)
		}
	}
}

func (a *analysis) printJSON() error {
	doc := struct {
		Cells  []*pathCell `json:"cells"`
		Replay []string    `json:"replay,omitempty"`
	}{Cells: a.sorted(), Replay: a.replay}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func main() {
	jsonOut := flag.Bool("json", false, "emit the summary as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xhctrace [-json] file...\n"+
			"  file: flight dump JSON (object or array) or Chrome trace JSON\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	a := newAnalysis()
	for _, path := range flag.Args() {
		if err := a.load(path); err != nil {
			fmt.Fprintf(os.Stderr, "xhctrace: %v\n", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		if err := a.printJSON(); err != nil {
			fmt.Fprintf(os.Stderr, "xhctrace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	a.printText()
}
