// Command xhctopo prints platform topologies, XHC hierarchies (the
// paper's Fig. 2), and the Table II message-distance accounting.
//
// A "<N>x<platform>" name selects a cluster: N nodes of the platform
// joined by the simulated fabric, rendered with the per-node hierarchy
// plus the network level (node leaders).
//
// Examples:
//
//	xhctopo -platform Epyc-2P
//	xhctopo -platform ARM-N1 -sens numa+socket -root 10
//	xhctopo -platform 4xEpyc-1P -np 32 -root 9
//	xhctopo -fig2
//	xhctopo -tab2
package main

import (
	"flag"
	"fmt"
	"os"

	"xhc/internal/exper"
	"xhc/internal/hier"
	"xhc/internal/topo"
)

func main() {
	platform := flag.String("platform", "Epyc-2P", "Epyc-1P | Epyc-2P | ARM-N1 | fig2")
	sens := flag.String("sens", "numa+socket", "hierarchy sensitivity (flat, numa, numa+socket, llc+numa+socket)")
	root := flag.Int("root", 0, "hierarchy root rank")
	nranks := flag.Int("np", 0, "rank count (0 = all cores)")
	policy := flag.String("policy", "map-core", "map-core | map-numa")
	fig2 := flag.Bool("fig2", false, "print the paper's Fig. 2 demo hierarchy")
	tab2 := flag.Bool("tab2", false, "print the Table II message-distance counts")
	flag.Parse()

	if *tab2 {
		e, _ := exper.ByID("tab2")
		r, err := e.Run(exper.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s\n%s", r.Title, r.Text)
		return
	}
	if *fig2 {
		*platform = "fig2"
	}

	if cl := topo.ClusterByName(*platform); cl != nil {
		renderCluster(cl, *sens, *root, *nranks, *policy)
		return
	}

	top := topo.ByName(*platform)
	if top == nil {
		fmt.Fprintf(os.Stderr, "unknown platform %q\n", *platform)
		os.Exit(2)
	}
	fmt.Print(top.Render())

	n := *nranks
	if n == 0 {
		n = top.NCores
	}
	s, err := hier.ParseSensitivity(*sens)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	m, err := top.Map(topo.MapPolicy(*policy), n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	h, err := hier.Build(top, m, s, *root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Println()
	fmt.Print(h.Render())
}

// renderCluster prints a cluster platform: the fabric + node summary, the
// network-level leader election, and one representative node hierarchy
// (all nodes share the node platform and mapping, so rendering each would
// repeat it N times).
func renderCluster(cl *topo.Cluster, sens string, root, nranks int, policy string) {
	fmt.Print(cl.Render())

	perNode := nranks
	if perNode == 0 {
		perNode = cl.Node.NCores
	} else {
		if perNode%cl.Nodes != 0 {
			fmt.Fprintf(os.Stderr, "np %d does not divide evenly over %d nodes\n", perNode, cl.Nodes)
			os.Exit(2)
		}
		perNode /= cl.Nodes
	}
	s, err := hier.ParseSensitivity(sens)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	m, err := cl.Node.Map(topo.MapPolicy(policy), perNode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ch, err := hier.BuildCluster(cl, m, s, root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Println()
	fmt.Print(ch.Render())
	fmt.Println()
	fmt.Printf("Per-node hierarchy (node %d, %d ranks):\n", ch.RootNode, perNode)
	fmt.Print(ch.Nodes[ch.RootNode].Render())
}
