// Command xhctopo prints platform topologies, XHC hierarchies (the
// paper's Fig. 2), and the Table II message-distance accounting.
//
// Examples:
//
//	xhctopo -platform Epyc-2P
//	xhctopo -platform ARM-N1 -sens numa+socket -root 10
//	xhctopo -fig2
//	xhctopo -tab2
package main

import (
	"flag"
	"fmt"
	"os"

	"xhc/internal/exper"
	"xhc/internal/hier"
	"xhc/internal/topo"
)

func main() {
	platform := flag.String("platform", "Epyc-2P", "Epyc-1P | Epyc-2P | ARM-N1 | fig2")
	sens := flag.String("sens", "numa+socket", "hierarchy sensitivity (flat, numa, numa+socket, llc+numa+socket)")
	root := flag.Int("root", 0, "hierarchy root rank")
	nranks := flag.Int("np", 0, "rank count (0 = all cores)")
	policy := flag.String("policy", "map-core", "map-core | map-numa")
	fig2 := flag.Bool("fig2", false, "print the paper's Fig. 2 demo hierarchy")
	tab2 := flag.Bool("tab2", false, "print the Table II message-distance counts")
	flag.Parse()

	if *tab2 {
		e, _ := exper.ByID("tab2")
		r, err := e.Run(exper.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s\n%s", r.Title, r.Text)
		return
	}
	if *fig2 {
		*platform = "fig2"
	}

	top := topo.ByName(*platform)
	if top == nil {
		fmt.Fprintf(os.Stderr, "unknown platform %q\n", *platform)
		os.Exit(2)
	}
	fmt.Print(top.Render())

	n := *nranks
	if n == 0 {
		n = top.NCores
	}
	s, err := hier.ParseSensitivity(*sens)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	m, err := top.Map(topo.MapPolicy(*policy), n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	h, err := hier.Build(top, m, s, *root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Println()
	fmt.Print(h.Render())
}
