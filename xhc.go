// Package xhc is a Go reproduction of "A framework for hierarchical
// single-copy MPI collectives on multicore nodes" (Katevenis, Ploumidis,
// Marazakis — IEEE CLUSTER 2022).
//
// It provides:
//
//   - a deterministic simulation of a multicore node (topology, NUMA/LLC
//     memory system, cache-line coherence, simulated XPMEM) on which the
//     paper's XHC collectives and all of its comparison frameworks run
//     (the data movement is performed for real, so every simulation is
//     also a correctness check);
//   - the XHC algorithms themselves — hierarchical, pipelined, single-copy
//     Broadcast / Allreduce / Reduce / Barrier;
//   - an OSU-style microbenchmark harness and models of the paper's three
//     applications (PiSvM, miniAMR, CNTK);
//   - a regenerable version of every table and figure in the paper's
//     evaluation (package-level Experiments API, cmd/xhcrepro);
//   - a native goroutine-level implementation of the XHC design (GoComm)
//     for real in-process collective operations.
//
// The entry points below are thin aliases over the implementation
// packages; see DESIGN.md for the system inventory.
package xhc

import (
	"xhc/internal/apps"
	"xhc/internal/baselines"
	"xhc/internal/coll"
	"xhc/internal/core"
	"xhc/internal/env"
	"xhc/internal/exper"
	"xhc/internal/gxhc"
	"xhc/internal/hier"
	"xhc/internal/mem"
	"xhc/internal/mpi"
	"xhc/internal/osu"
	"xhc/internal/topo"
)

// Topology describes a multicore node (sockets / NUMA / LLC / cores).
type Topology = topo.Topology

// MapPolicy selects the rank-to-core mapping (MapCore / MapNUMA).
type MapPolicy = topo.MapPolicy

// Mapping policies.
const (
	MapCore = topo.MapCore
	MapNUMA = topo.MapNUMA
)

// The paper's three evaluation platforms (Table I).
var (
	Epyc1P = topo.Epyc1P
	Epyc2P = topo.Epyc2P
	ArmN1  = topo.ArmN1
)

// Platforms returns the Table I systems in paper order.
func Platforms() []*Topology { return topo.Platforms() }

// PlatformByName resolves a platform codename ("Epyc-2P", "arm-n1", ...).
func PlatformByName(name string) *Topology { return topo.ByName(name) }

// World is an intra-node MPI job on a simulated platform.
type World = env.World

// Proc is one rank's execution context inside World.Run.
type Proc = env.Proc

// Buffer is a simulated (but real-data) memory region.
type Buffer = mem.Buffer

// NewWorld places nranks ranks (0 = all cores) on a platform.
func NewWorld(t *Topology, policy MapPolicy, nranks int) (*World, error) {
	if nranks == 0 {
		nranks = t.NCores
	}
	m, err := t.Map(policy, nranks)
	if err != nil {
		return nil, err
	}
	return env.NewWorld(t, m), nil
}

// Component is a collectives implementation (XHC or a baseline).
type Component = coll.Component

// NewComponent builds a registered component ("xhc-tree", "xhc-flat",
// "tuned", "ucc", "sm", "smhc-flat", "smhc-tree", "xbrc") over a world.
func NewComponent(name string, w *World) (Component, error) { return coll.New(name, w) }

// ComponentNames lists the registered components.
func ComponentNames() []string { return coll.Names() }

// Comm is the XHC communicator (the paper's contribution), giving access
// to configuration beyond the registry defaults.
type Comm = core.Comm

// Config tunes an XHC communicator.
type Config = core.Config

// XHC configuration helpers.
var (
	DefaultConfig = core.DefaultConfig
	FlatConfig    = core.FlatConfig
	NewXHC        = core.New
)

// ParseSensitivity parses hierarchy specifications like "numa+socket".
var ParseSensitivity = hier.ParseSensitivity

// FlagScheme selects the progress-flag cache-line placement (Fig. 10).
type FlagScheme = core.FlagScheme

// Flag placement schemes.
const (
	SingleFlag         = core.SingleFlag
	MultiSharedLine    = core.MultiSharedLine
	MultiSeparateLines = core.MultiSeparateLines
)

// TunedConfig tunes the OpenMPI-tuned-like baseline (exposed so ablations
// can vary its transport mechanism, as the paper's Fig. 3 does).
type TunedConfig = baselines.TunedConfig

// Baseline constructors.
var (
	NewTuned           = baselines.NewTuned
	DefaultTunedConfig = baselines.DefaultTunedConfig
)

// Datatypes and reduction operators.
type (
	// Datatype enumerates reduction element types.
	Datatype = mpi.Datatype
	// Op enumerates reduction operators.
	Op = mpi.Op
)

// Reduction datatypes and operators.
const (
	Byte    = mpi.Byte
	Int32   = mpi.Int32
	Int64   = mpi.Int64
	Float32 = mpi.Float32
	Float64 = mpi.Float64

	Sum  = mpi.Sum
	Prod = mpi.Prod
	Min  = mpi.Min
	Max  = mpi.Max
)

// MicroBench is the OSU-style benchmark harness (osu_bcast / osu_allreduce
// with the paper's buffer-dirtying _mb variant).
type MicroBench = osu.Bench

// BenchResult is one microbenchmark row.
type BenchResult = osu.Result

// DefaultSizes is the paper's 4 B – 4 MiB message-size sweep.
var DefaultSizes = osu.DefaultSizes

// BenchReport renders results as an OSU-style table.
var BenchReport = osu.Report

// Application models (paper Section V-D3).
type (
	// AppConfig places an application run.
	AppConfig = apps.Config
	// AppResult summarizes an application run.
	AppResult = apps.Result
)

// Application constructors and runners.
var (
	DefaultPiSvM       = apps.DefaultPiSvM
	RunPiSvM           = apps.PiSvM
	DefaultMiniAMR     = apps.DefaultMiniAMR
	ChallengingMiniAMR = apps.ChallengingMiniAMR
	RunMiniAMR         = apps.MiniAMR
	DefaultCNTK        = apps.DefaultCNTK
	RunCNTK            = apps.CNTK
)

// Experiment regenerates one of the paper's tables/figures.
type Experiment = exper.Experiment

// ExperimentReport is an experiment's output.
type ExperimentReport = exper.Report

// ExperimentOptions controls fidelity (Quick trims sweeps).
type ExperimentOptions = exper.Options

// Experiment access.
var (
	Experiments       = exper.All
	ExperimentByID    = exper.ByID
	RunAllExperiments = exper.RenderAll
)

// GoComm is the native goroutine-level implementation of the XHC design:
// real collective operations among goroutines sharing slices, with
// hierarchical groups and single-writer synchronization (package gxhc).
type GoComm = gxhc.Comm

// GoConfig tunes a GoComm.
type GoConfig = gxhc.Config

// Goroutine-collectives constructors.
var (
	NewGoComm       = gxhc.New
	MustNewGoComm   = gxhc.MustNew
	DefaultGoConfig = gxhc.DefaultConfig
)
