// Benchmarks regenerating the paper's tables and figures, one family per
// Benchmark function (see DESIGN.md's per-experiment index), plus the
// ablation benches for XHC's design choices.
//
// Each benchmark drives the deterministic simulator for b.N measured
// operations and reports the simulated mean latency as "sim-us/op"
// (wall-clock ns/op measures the simulator itself, which is also useful).
//
// Run with: go test -bench=. -benchmem
package xhc_test

import (
	"fmt"
	"testing"

	"xhc"
	"xhc/internal/mpi"
	"xhc/internal/osu"
)

// reportBcast runs a bcast microbenchmark with b.N measured iterations and
// reports the simulated latency.
func reportBcast(b *testing.B, bench xhc.MicroBench, size int) {
	b.Helper()
	bench.Warmup = 2
	bench.Iters = b.N
	bench.Dirty = true
	rs, err := bench.Bcast([]int{size})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rs[0].AvgLat, "sim-us/op")
}

func reportAllreduce(b *testing.B, bench xhc.MicroBench, size int) {
	b.Helper()
	bench.Warmup = 2
	bench.Iters = b.N
	bench.Dirty = true
	rs, err := bench.Allreduce([]int{size})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rs[0].AvgLat, "sim-us/op")
}

// BenchmarkFig01aDomains: one-way p2p latency per topological distance
// class (Fig. 1a).
func BenchmarkFig01aDomains(b *testing.B) {
	top := xhc.Epyc2P()
	cases := []struct {
		name string
		peer int
	}{
		{"cache-local", 1},
		{"intra-numa", 4},
		{"cross-numa", 8},
		{"cross-socket", 32},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			rs, err := osu.Latency(top, 0, c.peer, mpi.DefaultConfig(), []int{1 << 20}, 2, b.N, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rs[0].AvgLat, "sim-us/op")
		})
	}
}

// BenchmarkFig01bCongestion: the flat-vs-hierarchical concurrent memory
// copy experiment (Fig. 1b) at full occupancy.
func BenchmarkFig01bCongestion(b *testing.B) {
	for _, comp := range []string{"xhc-flat", "xhc-tree"} {
		b.Run(comp, func(b *testing.B) {
			reportBcast(b, xhc.MicroBench{Topo: xhc.Epyc1P(), Component: comp}, 1<<20)
		})
	}
}

// BenchmarkFig03CopyMechs: broadcast through tuned under each SMSC copy
// mechanism (Fig. 3b).
func BenchmarkFig03CopyMechs(b *testing.B) {
	for _, mech := range []mpi.Mechanism{mpi.XPMEM, mpi.KNEM, mpi.CMA, mpi.CICO} {
		mech := mech
		b.Run(string(mech), func(b *testing.B) {
			bench := xhc.MicroBench{
				Topo: xhc.Epyc2P(), NRanks: 64,
				Custom: tunedWithMech(mech, true),
			}
			reportBcast(b, bench, 256<<10)
		})
	}
	b.Run("xpmem-nocache", func(b *testing.B) {
		bench := xhc.MicroBench{Topo: xhc.Epyc2P(), NRanks: 64, Custom: tunedWithMech(mpi.XPMEM, false)}
		reportBcast(b, bench, 256<<10)
	})
}

func tunedWithMech(mech mpi.Mechanism, regCache bool) func(w *xhc.World) (xhc.Component, error) {
	return func(w *xhc.World) (xhc.Component, error) {
		cfg := xhc.DefaultTunedConfig()
		cfg.P2P.Mechanism = mech
		cfg.P2P.RegCache = regCache
		return xhc.NewTuned(w, cfg), nil
	}
}

// BenchmarkFig04Atomics: 4-byte broadcast with single-writer flags
// (smhc-flat) vs atomic fetch-add flags (sm) at full ARM-N1 occupancy.
func BenchmarkFig04Atomics(b *testing.B) {
	for _, comp := range []string{"smhc-flat", "sm"} {
		b.Run(comp, func(b *testing.B) {
			reportBcast(b, xhc.MicroBench{Topo: xhc.ArmN1(), Component: comp}, 4)
		})
	}
}

// BenchmarkFig07CacheEffects: stock osu_bcast vs the buffer-dirtying _mb
// variant for the flat tree (Fig. 7).
func BenchmarkFig07CacheEffects(b *testing.B) {
	for _, dirty := range []bool{false, true} {
		name := "stock"
		if dirty {
			name = "mb"
		}
		dirty := dirty
		b.Run(name, func(b *testing.B) {
			bench := xhc.MicroBench{Topo: xhc.Epyc2P(), Component: "xhc-flat",
				Warmup: 2, Iters: b.N, Dirty: dirty}
			rs, err := bench.Bcast([]int{64 << 10})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rs[0].AvgLat, "sim-us/op")
		})
	}
}

// BenchmarkFig08Bcast: the headline broadcast comparison (Fig. 8), one
// sub-benchmark per platform and component, at 64 KiB.
func BenchmarkFig08Bcast(b *testing.B) {
	for _, top := range xhc.Platforms() {
		for _, comp := range []string{"xhc-tree", "xhc-flat", "tuned", "ucc"} {
			b.Run(fmt.Sprintf("%s/%s", top.Name, comp), func(b *testing.B) {
				reportBcast(b, xhc.MicroBench{Topo: top, Component: comp}, 64<<10)
			})
		}
	}
}

// BenchmarkFig09aLayouts: broadcast under map-core vs map-numa (Fig. 9a).
func BenchmarkFig09aLayouts(b *testing.B) {
	for _, pol := range []xhc.MapPolicy{xhc.MapCore, xhc.MapNUMA} {
		for _, comp := range []string{"tuned", "xhc-tree"} {
			b.Run(fmt.Sprintf("%s/%s", pol, comp), func(b *testing.B) {
				reportBcast(b, xhc.MicroBench{Topo: xhc.Epyc2P(), NRanks: 64,
					Component: comp, Policy: pol}, 1<<20)
			})
		}
	}
}

// BenchmarkFig09bRoot: broadcast with root 0 vs root 10 (Fig. 9b).
func BenchmarkFig09bRoot(b *testing.B) {
	for _, root := range []int{0, 10} {
		for _, comp := range []string{"tuned", "xhc-tree"} {
			b.Run(fmt.Sprintf("root%d/%s", root, comp), func(b *testing.B) {
				reportBcast(b, xhc.MicroBench{Topo: xhc.Epyc2P(), NRanks: 64,
					Component: comp, Root: root}, 1<<20)
			})
		}
	}
}

// BenchmarkFig10FlagPlacement: small-message broadcast under the flag
// cache-line placement schemes (Fig. 10).
func BenchmarkFig10FlagPlacement(b *testing.B) {
	schemes := []struct {
		name string
		flat bool
		sep  bool
	}{
		{"flat-shared", true, false},
		{"flat-separated", true, true},
		{"tree-shared", false, false},
		{"tree-separated", false, true},
	}
	for _, sc := range schemes {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			bench := xhc.MicroBench{Topo: xhc.Epyc1P(), Custom: flagSchemeBuilder(sc.flat, sc.sep)}
			reportBcast(b, bench, 4)
		})
	}
}

// BenchmarkFig11Allreduce: the headline allreduce comparison (Fig. 11).
func BenchmarkFig11Allreduce(b *testing.B) {
	for _, top := range xhc.Platforms() {
		for _, comp := range []string{"xhc-tree", "xhc-flat", "tuned", "ucc", "xbrc"} {
			b.Run(fmt.Sprintf("%s/%s", top.Name, comp), func(b *testing.B) {
				reportAllreduce(b, xhc.MicroBench{Topo: top, Component: comp}, 64<<10)
			})
		}
	}
}

// BenchmarkFig12PiSvM / Fig13MiniAMR / Fig14CNTK: the application models.
func BenchmarkFig12PiSvM(b *testing.B) {
	benchApp(b, func(comp string) (float64, error) {
		cfg := xhc.DefaultPiSvM(xhc.AppConfig{Topo: xhc.Epyc2P(), Component: comp})
		cfg.Iterations = 5 * b.N
		res, err := xhc.RunPiSvM(cfg)
		return float64(res.Total) / 1e6, err // ps -> us
	})
}

func BenchmarkFig13MiniAMR(b *testing.B) {
	benchApp(b, func(comp string) (float64, error) {
		cfg := xhc.ChallengingMiniAMR(xhc.AppConfig{Topo: xhc.Epyc2P(), Component: comp})
		cfg.Steps = 10 * b.N
		res, err := xhc.RunMiniAMR(cfg)
		return float64(res.Total) / 1e6, err
	})
}

func BenchmarkFig14CNTK(b *testing.B) {
	benchApp(b, func(comp string) (float64, error) {
		cfg := xhc.DefaultCNTK(xhc.AppConfig{Topo: xhc.Epyc2P(), Component: comp})
		cfg.Minibatches = b.N
		res, err := xhc.RunCNTK(cfg)
		return float64(res.Total) / 1e6, err
	})
}

func benchApp(b *testing.B, run func(comp string) (float64, error)) {
	b.Helper()
	for _, comp := range []string{"xhc-tree", "tuned", "ucc"} {
		comp := comp
		b.Run(comp, func(b *testing.B) {
			us, err := run(comp)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(us/float64(b.N), "sim-us/op")
		})
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationChunkSize: pipelining granule sweep for a 1 MiB
// hierarchical broadcast.
func BenchmarkAblationChunkSize(b *testing.B) {
	for chunk := 8 << 10; chunk <= 1<<20; chunk *= 4 {
		chunk := chunk
		b.Run(fmt.Sprintf("%dK", chunk>>10), func(b *testing.B) {
			bench := xhc.MicroBench{Topo: xhc.Epyc2P(), Custom: chunkBuilder(chunk)}
			reportBcast(b, bench, 1<<20)
		})
	}
}

// BenchmarkAblationPipelineOff: chunk == message size disables cross-level
// overlap entirely.
func BenchmarkAblationPipelineOff(b *testing.B) {
	b.Run("pipelined-64K", func(b *testing.B) {
		reportBcast(b, xhc.MicroBench{Topo: xhc.Epyc2P(), Custom: chunkBuilder(64 << 10)}, 1<<20)
	})
	b.Run("unpipelined", func(b *testing.B) {
		reportBcast(b, xhc.MicroBench{Topo: xhc.Epyc2P(), Custom: chunkBuilder(1 << 20)}, 1<<20)
	})
}

// BenchmarkAblationCICOThreshold: where the copy-in-copy-out path stops
// paying off.
func BenchmarkAblationCICOThreshold(b *testing.B) {
	for _, thresh := range []int{0, 1 << 10, 16 << 10} {
		thresh := thresh
		for _, size := range []int{512, 4 << 10} {
			size := size
			b.Run(fmt.Sprintf("thresh%d/size%d", thresh, size), func(b *testing.B) {
				bench := xhc.MicroBench{Topo: xhc.Epyc2P(), Custom: func(w *xhc.World) (xhc.Component, error) {
					cfg := xhc.DefaultConfig()
					cfg.CICOThreshold = thresh
					return xhc.NewXHC(w, cfg)
				}}
				reportBcast(b, bench, size)
			})
		}
	}
}

// BenchmarkAblationRegCache: XHC with and without the registration cache.
func BenchmarkAblationRegCache(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "regcache-on"
		if !on {
			name = "regcache-off"
		}
		on := on
		b.Run(name, func(b *testing.B) {
			bench := xhc.MicroBench{Topo: xhc.Epyc2P(), Custom: func(w *xhc.World) (xhc.Component, error) {
				cfg := xhc.DefaultConfig()
				cfg.RegCache = on
				return xhc.NewXHC(w, cfg)
			}}
			reportBcast(b, bench, 256<<10)
		})
	}
}

// BenchmarkAblationSensitivity: hierarchy depth sweep.
func BenchmarkAblationSensitivity(b *testing.B) {
	for _, sens := range []string{"flat", "numa", "socket", "numa+socket", "llc+numa+socket"} {
		sens := sens
		b.Run(sens, func(b *testing.B) {
			bench := xhc.MicroBench{Topo: xhc.Epyc2P(), Custom: func(w *xhc.World) (xhc.Component, error) {
				cfg := xhc.DefaultConfig()
				s, err := xhc.ParseSensitivity(sens)
				if err != nil {
					return nil, err
				}
				cfg.Sensitivity = s
				return xhc.NewXHC(w, cfg)
			}}
			reportBcast(b, bench, 256<<10)
		})
	}
}

// BenchmarkGoCommBcast measures the real goroutine-level library (wall
// clock is the actual metric here).
func BenchmarkGoCommBcast(b *testing.B) {
	const n = 16
	comm := xhc.MustNewGoComm(n, xhc.DefaultGoConfig())
	bufs := make([][]byte, n)
	for r := range bufs {
		bufs[r] = make([]byte, 64<<10)
	}
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan struct{})
		for r := 0; r < n; r++ {
			go func(rank int) {
				comm.Bcast(rank, bufs[rank], 0)
				done <- struct{}{}
			}(r)
		}
		for r := 0; r < n; r++ {
			<-done
		}
	}
}

func chunkBuilder(chunk int) func(w *xhc.World) (xhc.Component, error) {
	return func(w *xhc.World) (xhc.Component, error) {
		cfg := xhc.DefaultConfig()
		cfg.ChunkBytes = []int{chunk}
		return xhc.NewXHC(w, cfg)
	}
}

func flagSchemeBuilder(flat, separated bool) func(w *xhc.World) (xhc.Component, error) {
	return func(w *xhc.World) (xhc.Component, error) {
		cfg := xhc.DefaultConfig()
		if flat {
			cfg = xhc.FlatConfig()
		}
		if separated {
			cfg.Flags = xhc.MultiSeparateLines
		} else {
			cfg.Flags = xhc.MultiSharedLine
		}
		return xhc.NewXHC(w, cfg)
	}
}
